#include "core/hashed_stretch6.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

ChosenNames ChosenNames::load(SnapshotReader& r) {
  ChosenNames names;
  names.of_id_ = r.vec_u64();
  names.id_of_.reserve(names.of_id_.size());
  for (NodeId v = 0; v < static_cast<NodeId>(names.of_id_.size()); ++v) {
    auto [it, inserted] =
        names.id_of_.emplace(names.of_id_[static_cast<std::size_t>(v)], v);
    (void)it;
    if (!inserted) {
      throw std::invalid_argument("ChosenNames: duplicate chosen name");
    }
  }
  return names;
}

void ChosenNames::save(SnapshotWriter& w) const { w.vec_u64(of_id_); }

ChosenNames ChosenNames::random(NodeId n, Rng& rng) {
  ChosenNames names;
  names.of_id_.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    ChosenName x = 0;
    do {
      x = (static_cast<std::uint64_t>(rng.uniform(0, (1ll << 62) - 1)) << 1) |
          static_cast<std::uint64_t>(rng.uniform(0, 1));
    } while (x == 0 || names.id_of_.contains(x));
    names.of_id_.push_back(x);
    names.id_of_.emplace(x, v);
  }
  return names;
}

NodeId ChosenNames::id_of(ChosenName x) const {
  auto it = id_of_.find(x);
  if (it == id_of_.end()) {
    throw std::invalid_argument("ChosenNames: unknown chosen name");
  }
  return it->second;
}

void ChosenNames::audit(AuditReport& report) const {
  auto scope = report.scope("chosen-names");
  bool inverse_ok = id_of_.size() == of_id_.size();
  std::string detail = inverse_ok ? "" : "reverse index size mismatch "
                                         "(duplicate chosen names?)";
  for (NodeId v = 0; inverse_ok && v < node_count(); ++v) {
    const ChosenName x = of_id_[static_cast<std::size_t>(v)];
    const auto it = id_of_.find(x);
    if (x == 0 || it == id_of_.end() || it->second != v) {
      inverse_ok = false;
      detail = "chosen name of node " + std::to_string(v) +
               " is zero or not inverted by the reverse index";
    }
  }
  report.check("chosen-names-unique", inverse_ok, std::move(detail));
}

namespace {
// A Mersenne prime comfortably above 2^63 inputs after the initial fold.
constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

std::uint64_t mulmod_p(std::uint64_t x, std::uint64_t y) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * y) % kPrime);
}
}  // namespace

BucketHash::BucketHash(NodeId n, Rng& rng)
    : n_(n),
      a_(static_cast<std::uint64_t>(rng.uniform(1, kPrime - 1))),
      b_(static_cast<std::uint64_t>(rng.uniform(0, kPrime - 1))) {
  if (n < 1) throw std::invalid_argument("BucketHash: n >= 1");
}

BucketHash::BucketHash(SnapshotReader& r) : n_(r.i32()), a_(r.u64()), b_(r.u64()) {
  if (n_ < 1) throw std::invalid_argument("BucketHash: n >= 1");
}

void BucketHash::save(SnapshotWriter& w) const {
  w.i32(n_);
  w.u64(a_);
  w.u64(b_);
}

NodeId BucketHash::bucket(ChosenName x) const {
  const std::uint64_t folded = x % kPrime;
  const std::uint64_t h = (mulmod_p(a_, folded) + b_) % kPrime;
  return static_cast<NodeId>(h % static_cast<std::uint64_t>(n_));
}

HashedStretch6Scheme::HashedStretch6Scheme(const Digraph& g,
                                           const RoundtripMetric& metric,
                                           const ChosenNames& chosen, Rng& rng,
                                           Options options)
    : chosen_(chosen),
      hash_(g.node_count(), rng),
      alphabet_(g.node_count(), 2),
      hood_size_(static_cast<NodeId>(alphabet_.q())),
      node_space_(g.node_count()) {
  const NodeId n = g.node_count();
  // Internal TINN naming for the machinery (Init tie-breaks, substrate):
  // decoupled from the chosen names, as the reduction allows.
  NameAssignment internal = NameAssignment::random(n, rng);
  substrate_ = std::make_shared<Rtz3Scheme>(g, metric, internal, rng,
                                            options.substrate);
  const int threads = resolve_apsp_threads(options.threads);
  // k = 2 over the bucket space: only the first q = hood_size_ positions of
  // Init_u are ever read, so truncated rows suffice.
  Neighborhoods hoods =
      compute_neighborhoods(metric, internal, hood_size_, threads);
  BlockAssignment assignment =
      assign_blocks(alphabet_, metric, internal, hoods, rng, options.blocks);

  // Invert the hash: bucket -> nodes whose chosen name lands there.
  std::vector<std::vector<NodeId>> bucket_members(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    bucket_members[static_cast<std::size_t>(hash_.bucket(chosen_.of_id(v)))]
        .push_back(v);
  }

  const std::int64_t blocks = alphabet_.relevant_block_count();
  tables_.resize(static_cast<std::size_t>(n));
  parallel_tickets(n, threads, [&] {
    return [&](std::int64_t ticket) {
    const auto u = static_cast<NodeId>(ticket);
    auto& tab = tables_[static_cast<std::size_t>(u)];
    const auto hood = hoods.prefix(u, hood_size_);
    // (1) chosen-name -> R3 for the neighborhood.
    for (NodeId v : hood) {
      tab.r3_names.push_back(chosen_.of_id(v));
    }
    // (2) a holder in N(u) per bucket-block.
    tab.holder_of_block.assign(static_cast<std::size_t>(blocks), 0);
    for (BlockId b = 0; b < blocks; ++b) {
      ChosenName holder = 0;
      for (NodeId v : hood) {
        if (assignment.holds(v, b)) {
          holder = chosen_.of_id(v);
          break;
        }
      }
      if (holder == 0) {
        throw std::logic_error("hashed-stretch6: Lemma 1 coverage violated");
      }
      tab.holder_of_block[static_cast<std::size_t>(b)] = holder;
    }
    // (3) dictionary: every chosen name hashing into a held block.
    for (BlockId b : assignment.blocks_of[static_cast<std::size_t>(u)]) {
      for (NodeName bucket : alphabet_.block_members(b)) {
        for (NodeId v : bucket_members[static_cast<std::size_t>(bucket)]) {
          tab.r3_names.push_back(chosen_.of_id(v));
        }
      }
    }
    std::sort(tab.r3_names.begin(), tab.r3_names.end());
    tab.r3_names.erase(
        std::unique(tab.r3_names.begin(), tab.r3_names.end()),
        tab.r3_names.end());
    };
  });
}

const RtzAddress* HashedStretch6Scheme::lookup_r3(NodeId at,
                                                  ChosenName t) const {
  const auto& tab = tables_[static_cast<std::size_t>(at)];
  if (!std::binary_search(tab.r3_names.begin(), tab.r3_names.end(), t)) {
    return nullptr;
  }
  // A stored name is by construction a real chosen name, so id_of cannot
  // throw here.
  return &substrate_->own_address(chosen_.id_of(t));
}

Decision HashedStretch6Scheme::forward(NodeId at, Header& h) const {
  const ChosenName at_name = chosen_.of_id(at);
  switch (h.mode) {
    case Mode::kNew: {
      h.src = at_name;
      h.src_addr = substrate_->own_address(at);
      h.mode = Mode::kOutbound;
      if (at_name == h.dest) return Decision::deliver_here();
      const RtzAddress* direct = lookup_r3(at, h.dest);
      LegStep step;
      if (direct != nullptr) {
        step = substrate_->start_leg(at, *direct, h.leg);
      } else {
        const BlockId block = alphabet_.block_of(hash_.bucket(h.dest));
        const ChosenName w = tables_[static_cast<std::size_t>(at)]
                                 .holder_of_block[static_cast<std::size_t>(block)];
        h.dict_node = w;
        h.dict_pending = true;
        const RtzAddress* w_addr = lookup_r3(at, w);
        if (w_addr == nullptr) {
          throw std::logic_error("hashed-stretch6: holder missing from (1)");
        }
        step = substrate_->start_leg(at, *w_addr, h.leg);
      }
      if (step.arrived) return forward(at, h);
      return Decision::forward_on(step.port);
    }
    case Mode::kOutbound: {
      if (at_name == h.dest) return Decision::deliver_here();
      if (h.dict_pending && at_name == h.dict_node) {
        h.dict_pending = false;
        const RtzAddress* t_addr = lookup_r3(at, h.dest);
        if (t_addr == nullptr) {
          throw std::logic_error(
              "hashed-stretch6: dictionary node lacks R3(dest)");
        }
        LegStep step = substrate_->start_leg(at, *t_addr, h.leg);
        if (step.arrived) return Decision::deliver_here();
        return Decision::forward_on(step.port);
      }
      // Mid-leg step: the substrate only flips the leg phase here, so the
      // header's encoded size is unchanged (see Rtz3Scheme::forward).
      LegStep step = substrate_->step_leg(at, h.leg);
      if (step.arrived) return forward(at, h);
      return Decision::forward_same_size(step.port);
    }
    case Mode::kReturn: {
      h.mode = Mode::kInbound;
      if (at_name == h.src) return Decision::deliver_here();
      LegStep step = substrate_->start_leg(at, h.src_addr, h.leg);
      if (step.arrived) return Decision::deliver_here();
      return Decision::forward_on(step.port);
    }
    case Mode::kInbound: {
      LegStep step = substrate_->step_leg(at, h.leg);
      if (step.arrived) {
        if (at_name != h.src) {
          throw std::logic_error("hashed-stretch6: inbound arrived off-source");
        }
        return Decision::deliver_here();
      }
      return Decision::forward_same_size(step.port);
    }
  }
  throw std::logic_error("hashed-stretch6: bad mode");
}

std::int64_t HashedStretch6Scheme::header_bits(const Header& h) const {
  return 2 /* mode */ + 1 + 3 * 64 /* three chosen names */ +
         substrate_->address_bits(h.src_addr) +
         substrate_->leg_header_bits(h.leg);
}

void HashedStretch6Scheme::audit(AuditReport& report) const {
  auto scope = report.scope("hashed64");
  substrate_->audit(report);
  chosen_.audit(report);
  alphabet_.audit(report);

  const auto n = static_cast<std::size_t>(chosen_.node_count());
  report.check("tables-sized", tables_.size() == n,
               "one table block per node");
  if (tables_.size() != n) return;

  const std::int64_t block_count = alphabet_.relevant_block_count();
  bool r3_ok = true;
  bool holders_ok = true;
  std::string r3_detail, holder_detail;
  const auto is_known = [&](ChosenName x) {
    try {
      (void)chosen_.id_of(x);
      return true;
    } catch (const std::invalid_argument&) {
      return false;
    }
  };
  for (std::size_t v = 0; v < n; ++v) {
    const NodeTables& t = tables_[v];
    for (std::size_t i = 0; r3_ok && i < t.r3_names.size(); ++i) {
      if ((i > 0 && t.r3_names[i - 1] >= t.r3_names[i]) ||
          !is_known(t.r3_names[i])) {
        r3_ok = false;
        r3_detail = "r3 dictionary of node " + std::to_string(v) +
                    " unsorted or referencing an unknown chosen name";
      }
    }
    if (holders_ok &&
        t.holder_of_block.size() != static_cast<std::size_t>(block_count)) {
      holders_ok = false;
      holder_detail = "node " + std::to_string(v) +
                      " does not record one holder per relevant block";
      continue;
    }
    for (std::size_t b = 0; holders_ok && b < t.holder_of_block.size(); ++b) {
      if (!is_known(t.holder_of_block[b])) {
        holders_ok = false;
        holder_detail = "holder of block " + std::to_string(b) + " at node " +
                        std::to_string(v) + " is not a known chosen name";
      }
    }
  }
  report.check("r3-dicts-sorted", r3_ok, std::move(r3_detail));
  report.check("block-holders-valid", holders_ok, std::move(holder_detail));
}

TableStats HashedStretch6Scheme::table_stats() const {
  const auto n = static_cast<NodeId>(tables_.size());
  TableStats stats = substrate_->table_stats();
  const std::int64_t id_bits = bits_for(node_space_);
  for (NodeId v = 0; v < n; ++v) {
    const auto& tab = tables_[static_cast<std::size_t>(v)];
    std::int64_t entries = 0, bits = 0;
    for (ChosenName name : tab.r3_names) {
      ++entries;
      bits += 64 + substrate_->address_bits(
                       substrate_->own_address(chosen_.id_of(name)));
    }
    entries += static_cast<std::int64_t>(tab.holder_of_block.size());
    bits += static_cast<std::int64_t>(tab.holder_of_block.size()) * (id_bits + 64);
    stats.add(v, entries, bits);
  }
  return stats;
}

// ---------------------------------------------------------------- snapshot --

void HashedStretch6Scheme::save(SnapshotWriter& w) const {
  chosen_.save(w);
  hash_.save(w);
  alphabet_.save(w);
  w.i32(hood_size_);
  substrate_->save(w);
  w.u64(tables_.size());
  for (const NodeTables& t : tables_) {
    w.vec_u64(t.r3_names);
    w.vec_u64(t.holder_of_block);
  }
  w.i64(node_space_);
}

HashedStretch6Scheme::HashedStretch6Scheme(SnapshotReader& r, const Digraph& g)
    : chosen_(ChosenNames::load(r)),
      hash_(r),
      alphabet_(Alphabet::load(r)),
      hood_size_(r.i32()),
      substrate_(std::make_shared<const Rtz3Scheme>(r, g)) {
  if (chosen_.node_count() != g.node_count()) {
    throw std::invalid_argument(
        "hashed64 snapshot: chosen-name count does not match the graph");
  }
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(g.node_count())) {
    throw std::invalid_argument(
        "hashed64 snapshot: table count does not match the graph");
  }
  tables_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    NodeTables t;
    t.r3_names = r.vec_u64();
    t.holder_of_block = r.vec_u64();
    tables_.push_back(std::move(t));
  }
  node_space_ = r.i64();
}

}  // namespace rtr
