// The Section 1.1.2 reduction: topology-independent names chosen by the
// nodes themselves from a large space.
//
// "A reduction in [4] shows that, if nodes choose their own names from a
// range space sufficiently large, they will be unique with high probability,
// and that these names can be hashed to the values {0,...,n-1} with small
// numbers of collisions.  It is straightforward to adapt our protocols to
// this setting with only a constant blowup in the size of the routing
// tables."
//
// We realize that adaptation for the stretch-6 scheme: each node announces a
// 64-bit chosen name; a universal hash h(x) = ((a x + b) mod p) mod n maps
// chosen names to buckets in {0..n-1}; the dictionary blocks partition the
// *bucket* space, and each dictionary entry stores the full chosen name next
// to its R3 address (collision lists live inside the blocks, whose sizes
// concentrate around q by universality -- the "constant blowup").  Packets
// arrive carrying only the 64-bit chosen destination name; the forwarding
// state machine is Fig. 3's, with h applied wherever Section 2 read a block
// index off a name.
#ifndef RTR_CORE_HASHED_STRETCH6_H
#define RTR_CORE_HASHED_STRETCH6_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/names.h"
#include "dict/alphabet.h"
#include "dict/block_assignment.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"

namespace rtr {

using ChosenName = std::uint64_t;

/// The per-node self-chosen 64-bit names (unique; in the model they are
/// unique w.h.p., and the protocol may reject duplicates at join time).
class ChosenNames {
 public:
  static ChosenNames random(NodeId n, Rng& rng);

  /// Snapshot path: rebuilds the reverse index from the saved names.
  static ChosenNames load(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(of_id_.size());
  }
  [[nodiscard]] ChosenName of_id(NodeId v) const {
    return of_id_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId id_of(ChosenName x) const;

  /// Auditable: chosen names non-zero and unique, with the reverse index the
  /// exact inverse of the forward table.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  std::vector<ChosenName> of_id_;
  std::unordered_map<ChosenName, NodeId> id_of_;
};

/// Universal hash from chosen names onto buckets {0..n-1}.
class BucketHash {
 public:
  BucketHash(NodeId n, Rng& rng);

  /// Snapshot path: the hash is fully determined by (n, a, b).
  explicit BucketHash(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId bucket(ChosenName x) const;

 private:
  NodeId n_;
  std::uint64_t a_, b_;
};

class HashedStretch6Scheme {
 public:
  struct Options {
    Rtz3Scheme::Options substrate;
    BlockAssignmentOptions blocks;
    /// Construction fan-out (neighborhoods + per-node tables); <= 0 resolves
    /// the process default.  Bit-identical output for any value.
    int threads = 0;
  };

  HashedStretch6Scheme(const Digraph& g, const RoundtripMetric& metric,
                       const ChosenNames& chosen, Rng& rng, Options options);
  HashedStretch6Scheme(const Digraph& g, const RoundtripMetric& metric,
                       const ChosenNames& chosen, Rng& rng)
      : HashedStretch6Scheme(g, metric, chosen, rng, Options{}) {}

  /// Snapshot path: rehydrates tables (and the substrate's) saved with
  /// save(); `g` must be the snapshot's own graph and outlive the scheme.
  HashedStretch6Scheme(SnapshotReader& r, const Digraph& g);
  void save(SnapshotWriter& w) const;

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  struct Header {
    Mode mode = Mode::kNew;
    ChosenName dest = 0;  // the only field present at injection
    ChosenName src = 0;
    RtzAddress src_addr;
    ChosenName dict_node = 0;
    bool dict_pending = false;
    LegHeader leg;
  };

  [[nodiscard]] Header make_packet(ChosenName dest) const {
    Header h;
    h.dest = dest;
    return h;
  }
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const { return "stretch6(64-bit names)"; }

  /// Fig. 3's state machine over hashed buckets keeps Lemma 3's bound.
  [[nodiscard]] double stretch_bound() const { return 6.0; }

  /// The chosen-name table the scheme was built over (adapters translate
  /// TINN destinations through it).
  [[nodiscard]] const ChosenNames& chosen() const { return chosen_; }

  /// Auditable: delegates to the substrate, chosen-name table, and bucket
  /// alphabet, then checks the per-node dictionaries (sorted unique 64-bit
  /// keys resolving to real chosen names, one holder per relevant block).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  struct NodeTables {
    // Items (1) + (3): sorted chosen names whose (name, R3) pair this node
    // stores; lookup_r3 resolves the address payload through the substrate
    // (one copy per node, not per dictionary entry).
    std::vector<ChosenName> r3_names;
    std::vector<ChosenName> holder_of_block;  // item (2)
  };

  [[nodiscard]] const RtzAddress* lookup_r3(NodeId at, ChosenName t) const;

  ChosenNames chosen_;
  BucketHash hash_;
  Alphabet alphabet_;  // over the bucket space
  NodeId hood_size_;
  std::shared_ptr<const Rtz3Scheme> substrate_;
  std::vector<NodeTables> tables_;
  std::int64_t node_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_CORE_HASHED_STRETCH6_H
