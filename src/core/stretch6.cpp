#include "core/stretch6.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/arena.h"
#include "io/snapshot_format.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

void Stretch6Scheme::save(SnapshotWriter& w) const {
  names_.save(w);
  alphabet_.save(w);
  w.i32(hood_size_);
  substrate_->save(w);
  w.u8(detour_via_source_ ? 1 : 0);
  save_block_assignment(w, assignment_);
  const auto n = static_cast<std::size_t>(names_.node_count());
  w.u64(n);
  // Replays the exact historical per-node stream from the flat arrays.
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(r3_off_[v]);
    const auto hi = static_cast<std::size_t>(r3_off_[v + 1]);
    w.vec_i32(std::vector<NodeName>(r3_names_.data() + lo,
                                    r3_names_.data() + hi));
    const NodeName* row =
        holder_of_.data() + v * static_cast<std::size_t>(block_count_);
    w.vec_i32(std::vector<NodeName>(
        row, row + static_cast<std::size_t>(block_count_)));
  }
  w.i64(node_space_);
}

void Stretch6Scheme::adopt_r3_rows(
    const std::vector<std::vector<NodeName>>& rows) {
  std::vector<std::int64_t> off(rows.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < rows.size(); ++v) {
    total += rows[v].size();
    off[v + 1] = static_cast<std::int64_t>(total);
  }
  std::vector<NodeName> flat;
  flat.reserve(total);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  r3_off_ = std::move(off);
  r3_names_ = std::move(flat);
  arena_.reset();
}

Stretch6Scheme::Stretch6Scheme(SnapshotReader& r, const Digraph& g)
    : names_(NameAssignment::load(r)),
      alphabet_(Alphabet::load(r)),
      hood_size_(r.i32()),
      substrate_(std::make_shared<const Rtz3Scheme>(r, g)) {
  detour_via_source_ = r.u8() != 0;
  assignment_ = load_block_assignment(r);
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(g.node_count())) {
    throw std::invalid_argument(
        "stretch6 snapshot: table count does not match the graph");
  }
  block_count_ = alphabet_.relevant_block_count();
  std::vector<std::vector<NodeName>> r3_rows(static_cast<std::size_t>(n));
  std::vector<NodeName> holders;
  holders.reserve(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(block_count_));
  for (std::uint64_t i = 0; i < n; ++i) {
    r3_rows[static_cast<std::size_t>(i)] = r.vec_i32();
    const std::vector<NodeName> holder_row = r.vec_i32();
    if (holder_row.size() != static_cast<std::size_t>(block_count_)) {
      throw std::invalid_argument(
          "stretch6 snapshot: holder rows not sized to the relevant blocks");
    }
    holders.insert(holders.end(), holder_row.begin(), holder_row.end());
  }
  adopt_r3_rows(r3_rows);
  holder_of_ = std::move(holders);
  node_space_ = r.i64();
}

void Stretch6Scheme::save_arena(ArenaWriter& w,
                                const std::string& prefix) const {
  substrate_->save_arena(w, prefix + "s/");
  w.add(prefix + "r3_off", r3_off_);
  w.add(prefix + "r3_names", r3_names_);
  w.add(prefix + "holders", holder_of_);
  // The name assignment is NOT embedded: the arena's top-level names
  // sections are the same assignment, and the loader receives them.
  SnapshotWriter meta;
  alphabet_.save(meta);
  meta.i32(hood_size_);
  meta.u8(detour_via_source_ ? 1 : 0);
  save_block_assignment(meta, assignment_);
  meta.i64(node_space_);
  const auto& meta_bytes = meta.bytes();
  w.add_bytes(prefix + "meta", meta_bytes.data(), meta_bytes.size());
}

Stretch6Scheme::Stretch6Scheme(SnapshotReader& meta, const ArenaView& a,
                               const std::string& prefix, const Digraph& g,
                               const NameAssignment& names)
    : names_(names),
      alphabet_(Alphabet::load(meta)),
      hood_size_(meta.i32()),
      substrate_(std::make_shared<const Rtz3Scheme>(
          Rtz3Scheme::from_arena(a, prefix + "s/", g, names))) {
  detour_via_source_ = meta.u8() != 0;
  assignment_ = load_block_assignment(meta);
  node_space_ = meta.i64();
  meta.expect_exhausted("stretch6 arena meta");

  const auto n = static_cast<std::size_t>(g.node_count());
  if (static_cast<std::size_t>(names_.node_count()) != n) {
    throw SnapshotArenaError(
        "stretch6 arena: name table does not match the graph");
  }
  block_count_ = alphabet_.relevant_block_count();
  r3_off_ = a.vec<std::int64_t>(prefix + "r3_off", n + 1);
  r3_names_ = a.vec<NodeName>(prefix + "r3_names");
  holder_of_ = a.vec<NodeName>(
      prefix + "holders", n * static_cast<std::size_t>(block_count_));
  if (r3_off_.front() != 0 ||
      r3_off_.back() != static_cast<std::int64_t>(r3_names_.size()) ||
      !std::is_sorted(r3_off_.begin(), r3_off_.end())) {
    throw SnapshotArenaError(
        "stretch6 arena: r3 dictionary offsets are not a well-formed CSR");
  }
  arena_ = a.storage();
}

Stretch6Scheme Stretch6Scheme::from_arena(const ArenaView& a,
                                          const std::string& prefix,
                                          const Digraph& g,
                                          const NameAssignment& names) {
  SnapshotReader meta = a.reader(prefix + "meta");
  return Stretch6Scheme(meta, a, prefix, g, names);
}

Stretch6Scheme::Stretch6Scheme(const Digraph& g, const RoundtripMetric& metric,
                               const NameAssignment& names, Rng& rng,
                               Options options)
    : names_(names),
      alphabet_(g.node_count(), 2),
      hood_size_(static_cast<NodeId>(alphabet_.q())),
      substrate_(std::make_shared<Rtz3Scheme>(g, metric, names, rng,
                                              options.substrate)),
      detour_via_source_(options.detour_via_source),
      node_space_(g.node_count()) {
  const NodeId n = g.node_count();
  const int threads = resolve_apsp_threads(options.threads);
  // k = 2: the block lemmas and item (2) only read the first q = hood_size_
  // positions of Init_u, so truncated rows suffice.
  Neighborhoods hoods =
      compute_neighborhoods(metric, names_, hood_size_, threads);
  assignment_ =
      assign_blocks(alphabet_, metric, names_, hoods, rng, options.blocks);

  const std::int64_t blocks = alphabet_.relevant_block_count();
  block_count_ = blocks;
  // Per-ticket writes are disjoint: node u owns its r3 row and its fixed
  //-width holder row at u * blocks, so the fan-out is race-free.
  std::vector<std::vector<NodeName>> r3_rows(static_cast<std::size_t>(n));
  std::vector<NodeName> holders(static_cast<std::size_t>(n) *
                                    static_cast<std::size_t>(blocks),
                                kNoNode);
  parallel_tickets(n, threads, [&] {
    return [&](std::int64_t ticket) {
    const auto u = static_cast<NodeId>(ticket);
    auto& row = r3_rows[static_cast<std::size_t>(u)];
    NodeName* holder_row = holders.data() + static_cast<std::size_t>(u) *
                                                static_cast<std::size_t>(blocks);
    const auto hood = hoods.prefix(u, hood_size_);

    // (1) R3 for every neighborhood member (includes u itself: hood[0] == u).
    for (NodeId v : hood) {
      row.push_back(names_.name_of(v));
    }

    // (2) nearest holder in N(u) per block (Lemma 1 guarantees existence).
    for (BlockId b = 0; b < blocks; ++b) {
      for (NodeId v : hood) {
        if (assignment_.holds(v, b)) {
          holder_row[static_cast<std::size_t>(b)] = names_.name_of(v);
          break;
        }
      }
      if (holder_row[static_cast<std::size_t>(b)] == kNoNode) {
        throw std::logic_error(
            "Stretch6Scheme: Lemma 1 coverage violated (no holder in N(u))");
      }
    }

    // (3) dictionary entries of every held block.
    for (BlockId b : assignment_.blocks_of[static_cast<std::size_t>(u)]) {
      for (NodeName member : alphabet_.block_members(b)) {
        row.push_back(member);
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    };
  });
  adopt_r3_rows(r3_rows);
  holder_of_ = std::move(holders);
}

Decision Stretch6Scheme::forward(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  switch (h.mode) {
    case Mode::kNew: {
      // Fig. 3, NewPacket branch.  Source fields must be written even for a
      // self-addressed packet: the acknowledgment path reads them.
      h.src = at_name;
      h.src_addr = substrate_->own_address(at);
      h.mode = Mode::kOutbound;
      if (at_name == h.dest) return Decision::deliver_here();
      const RtzAddress* direct = lookup_r3(at, h.dest);
      LegStep step;
      if (direct != nullptr) {
        h.phase = Phase::kToDest;
        step = substrate_->start_leg(at, *direct, h.leg);
      } else {
        // Remote dictionary lookup: route to the neighborhood's holder of
        // t's block (its own R3 is in table item (1)).
        const BlockId block = alphabet_.block_of(h.dest);
        const NodeName w =
            holder_of_[static_cast<std::size_t>(at) *
                           static_cast<std::size_t>(block_count_) +
                       static_cast<std::size_t>(block)];
        h.dict_node = w;
        h.phase = Phase::kToDict;
        const RtzAddress* w_addr = lookup_r3(at, w);
        if (w_addr == nullptr) {
          throw std::logic_error("stretch6: holder missing from table (1)");
        }
        step = substrate_->start_leg(at, *w_addr, h.leg);
      }
      if (step.arrived) return forward(at, h);  // leg degenerate: re-dispatch
      return Decision::forward_on(step.port);
    }
    case Mode::kOutbound: {
      if (at_name == h.dest) return Decision::deliver_here();
      if (h.phase == Phase::kToDict && at_name == h.dict_node) {
        // Fig. 3: at the dictionary node, learn R3(t).  Either head straight
        // to t, or (Section 2.2's remarked variant) carry R3(t) back to the
        // source first.
        h.dict_node = kNoNode;
        const RtzAddress* t_addr = lookup_r3(at, h.dest);
        if (t_addr == nullptr) {
          throw std::logic_error("stretch6: dictionary node lacks R3(dest)");
        }
        LegStep step;
        if (detour_via_source_) {
          h.learned_dest = *t_addr;
          h.phase = Phase::kBackToSource;
          step = substrate_->start_leg(at, h.src_addr, h.leg);
        } else {
          h.phase = Phase::kToDest;
          step = substrate_->start_leg(at, *t_addr, h.leg);
        }
        if (step.arrived) return forward(at, h);  // w == t or w == s
        return Decision::forward_on(step.port);
      }
      // Mid-leg step: the substrate only ever flips the leg phase here, so
      // the header's encoded size is unchanged (see Rtz3Scheme::forward).
      LegStep step = substrate_->step_leg(at, h.leg);
      if (!step.arrived) return Decision::forward_same_size(step.port);
      if (h.phase == Phase::kBackToSource) {
        // Detour landed back at the source carrying R3(t): final leg.
        h.phase = Phase::kToDest;
        LegStep next = substrate_->start_leg(at, h.learned_dest, h.leg);
        if (next.arrived) return Decision::deliver_here();
        return Decision::forward_on(next.port);
      }
      return forward(at, h);  // arrived at w: re-dispatch
    }
    case Mode::kReturn: {
      // Fig. 3, ReturnPacket branch: ack routes to SrcLabel.
      h.mode = Mode::kInbound;
      if (at_name == h.src) return Decision::deliver_here();
      LegStep step = substrate_->start_leg(at, h.src_addr, h.leg);
      if (step.arrived) return Decision::deliver_here();
      return Decision::forward_on(step.port);
    }
    case Mode::kInbound: {
      // The packet may pass *through* the source mid-leg (e.g. while
      // climbing toward a center); only a leg arrival is delivery.
      LegStep step = substrate_->step_leg(at, h.leg);
      if (step.arrived) {
        if (at_name != h.src) {
          throw std::logic_error("stretch6: inbound leg arrived off-source");
        }
        return Decision::deliver_here();
      }
      return Decision::forward_same_size(step.port);
    }
  }
  throw std::logic_error("stretch6: bad mode");
}

std::int64_t Stretch6Scheme::header_bits(const Header& h) const {
  std::int64_t bits = 2 /* mode */ + 2 /* phase */ +
                      3 * bits_for(node_space_) /* dest, src, dict_node */ +
                      substrate_->address_bits(h.src_addr) +
                      substrate_->leg_header_bits(h.leg);
  if (detour_via_source_) bits += substrate_->address_bits(h.learned_dest);
  return bits;
}

void Stretch6Scheme::audit(AuditReport& report) const {
  auto scope = report.scope("stretch6");
  substrate_->audit(report);
  alphabet_.audit(report);
  assignment_.audit(report, alphabet_);
  {
    auto names_scope = report.scope("names");
    names_.audit(report);
  }

  const auto n = static_cast<std::size_t>(names_.node_count());
  const std::int64_t block_count = alphabet_.relevant_block_count();
  report.check("tables-sized",
               r3_off_.size() == n + 1 &&
                   block_count_ == block_count &&
                   holder_of_.size() ==
                       n * static_cast<std::size_t>(block_count),
               "CSR offsets per node and one holder row per node");
  report.check("neighborhood-size",
               hood_size_ >= 1 &&
                   static_cast<std::size_t>(hood_size_) <= std::max<std::size_t>(n, 1),
               "N(u) must have between 1 and n members");
  if (r3_off_.size() != n + 1 ||
      holder_of_.size() != n * static_cast<std::size_t>(block_count)) {
    return;
  }
  report.check("r3-offsets-wellformed",
               r3_off_.front() == 0 &&
                   r3_off_.back() ==
                       static_cast<std::int64_t>(r3_names_.size()) &&
                   std::is_sorted(r3_off_.begin(), r3_off_.end()),
               "r3 CSR offsets monotone and framing the key array");
  if (r3_off_.front() != 0 ||
      r3_off_.back() != static_cast<std::int64_t>(r3_names_.size()) ||
      !std::is_sorted(r3_off_.begin(), r3_off_.end())) {
    return;
  }

  bool r3_ok = true;
  bool holders_ok = true;
  std::string r3_detail, holder_detail;
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(r3_off_[v]);
    const auto hi = static_cast<std::size_t>(r3_off_[v + 1]);
    for (std::size_t i = lo; r3_ok && i < hi; ++i) {
      const NodeName name = r3_names_[i];
      if (name < 0 || static_cast<std::size_t>(name) >= n ||
          (i > lo && r3_names_[i - 1] >= name)) {
        r3_ok = false;
        r3_detail = "r3 dictionary of node " + std::to_string(v) +
                    " not sorted/unique/in-range";
      }
    }
    const NodeName* holder_row =
        holder_of_.data() + v * static_cast<std::size_t>(block_count);
    for (std::size_t b = 0;
         holders_ok && b < static_cast<std::size_t>(block_count); ++b) {
      const NodeName holder = holder_row[b];
      if (holder < 0 || static_cast<std::size_t>(holder) >= n ||
          !assignment_.holds(names_.id_of(holder),
                             static_cast<BlockId>(b))) {
        holders_ok = false;
        holder_detail = "recorded holder of block " + std::to_string(b) +
                        " at node " + std::to_string(v) +
                        " does not hold the block";
      }
    }
  }
  report.check("r3-dicts-sorted", r3_ok, std::move(r3_detail));
  report.check("block-holders-valid", holders_ok, std::move(holder_detail));
}

TableStats Stretch6Scheme::table_stats() const {
  const auto n = names_.node_count();
  TableStats stats = substrate_->table_stats();  // item (4): Tab3(u)
  const std::int64_t id_bits = bits_for(node_space_);
  for (NodeId v = 0; v < n; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    const auto lo = static_cast<std::size_t>(r3_off_[vz]);
    const auto hi = static_cast<std::size_t>(r3_off_[vz + 1]);
    std::int64_t entries = 0, bits = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      ++entries;
      bits += id_bits + substrate_->address_bits(
                            substrate_->address_of_name(r3_names_[i]));
    }
    entries += block_count_;
    bits += block_count_ * (id_bits + id_bits);
    stats.add(v, entries, bits);
  }
  return stats;
}

}  // namespace rtr
