// Algorithm PolynomialStretch: the TINN scheme with a polynomial
// stretch/space tradeoff (paper Section 4, pseudocode Figs. 9 and 11).
//
// For every level i = 1..ceil(log2 RTDiam) a Theorem 13 double-tree cover at
// radius 2^i assigns each node a *home* double-tree spanning its whole ball
// N-hat^{2^i}(v).  Within a double tree, every member u stores for each
// (prefix length j, next digit tau) the tree-routing label of the nearest
// member v with sigma^j(v) = sigma^j(u) and digit j of v equal to tau -- a
// per-tree prefix-matching dictionary keyed by u's own name.
//
// Routing from s to t tries s's home tree level by level: inside tree C the
// packet hops between members whose names match ever longer prefixes of t,
// each hop routed through the tree's center (up the in-tree, down the
// out-tree).  If some waypoint lacks an extending entry, the packet returns
// to s (detectable failure: prefixes only grow) and s escalates one level.
// Once 2^i >= r(s,t), t itself lies in s's home tree so every extension
// exists and the chain reaches t in <= k hops; the trip at that level costs
// at most (k+1) roundtrips to the center, each <= RTHeight <= (2k-1) 2^i,
// and summing the geometric levels gives stretch <= 8k^2 + 4k - 4 (§4.3).
#ifndef RTR_CORE_POLYSTRETCH_H
#define RTR_CORE_POLYSTRETCH_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/names.h"
#include "dict/alphabet.h"
#include "net/simulator.h"
#include "rtz/handshake.h"

namespace rtr {

class PolyStretchScheme {
 public:
  struct Options {
    int k = 3;  // tradeoff parameter (>= 2)
    /// Construction fan-out (cover trees + per-member dictionaries); <= 0
    /// resolves the process default.  Bit-identical for any value.
    int threads = 0;
  };

  PolyStretchScheme(const Digraph& g, const RoundtripMetric& metric,
                    const NameAssignment& names, Options options);
  PolyStretchScheme(const Digraph& g, const RoundtripMetric& metric,
                    const NameAssignment& names)
      : PolyStretchScheme(g, metric, names, Options{}) {}

  /// Snapshot path: rehydrates tables and the cover hierarchy saved with
  /// save(); self-contained (forwarding never consults the graph).
  explicit PolyStretchScheme(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  enum class Mode : std::uint8_t { kNew, kEnroute, kReturn };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;
    NodeName src = kNoNode;
    bool found = false;          // set at the destination (Fig. 11)
    std::int32_t level = 0;      // current level index (0-based)
    TreeRef tree;                // s's home double-tree at this level
    TreeLabel src_label;         // s's label in that tree (SourceLabel)
    NodeName waypoint = kNoNode; // head of the in-flight within-tree trip
    DtLeg leg;
  };

  [[nodiscard]] Header make_packet(NodeName dest) const {
    Header h;
    h.dest = dest;
    return h;
  }
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const {
    return "polystretch(k=" + std::to_string(alphabet_.k()) + ")";
  }

  /// 8k^2 + 4k - 4 (Section 4.3).
  [[nodiscard]] double stretch_bound() const {
    const double k = alphabet_.k();
    return 8 * k * k + 4 * k - 4;
  }

  [[nodiscard]] const Alphabet& alphabet() const { return alphabet_; }
  [[nodiscard]] const CoverHierarchy& hierarchy() const { return *hierarchy_; }

  /// Auditable: delegates to the naming, alphabet, and cover hierarchy, then
  /// checks each node's per-tree storage references real trees containing
  /// the node, with in-range waypoint names in every dictionary entry.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  struct DictEntry {
    NodeName node = kNoNode;
    TreeLabel label;  // TreeR(C_i, node)
  };
  struct PerTree {
    TreeLabel own_label;  // TreeR(C_i, u)
    // key = j * q + tau -> nearest extending member (keys use u's own
    // prefixes, so j is implicit in the match; see build).
    std::unordered_map<std::int64_t, DictEntry> dict;
  };
  struct NodeTables {
    // (level, tree index within level) -> per-tree storage.
    std::unordered_map<std::int64_t, PerTree> per_tree;
  };

  [[nodiscard]] std::int64_t tree_key(TreeRef ref) const {
    return static_cast<std::int64_t>(ref.level) * (1 << 24) + ref.tree;
  }

  /// NextNode at the current node within h.tree (Fig. 9 / Section 4.2):
  /// extend the matched prefix or fall back to the source.
  [[nodiscard]] Decision next_hop(NodeId at, Header& h) const;

  /// Start the next attempt at the source: pick home tree for h.level.
  [[nodiscard]] Decision start_level(NodeId at, Header& h) const;

  NameAssignment names_;
  Alphabet alphabet_;
  std::shared_ptr<const CoverHierarchy> hierarchy_;
  std::vector<NodeTables> tables_;
  std::int64_t node_space_ = 0;
  std::int64_t port_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_CORE_POLYSTRETCH_H
