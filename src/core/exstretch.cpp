#include "core/exstretch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

void ExStretchScheme::save(SnapshotWriter& w) const {
  names_.save(w);
  alphabet_.save(w);
  hierarchy_->save(w);
  save_block_assignment(w, assignment_);
  w.u64(tables_.size());
  for (const NodeTables& t : tables_) {
    w.sorted_map(
        t.nbr_r2, [](SnapshotWriter& ww, NodeName k) { ww.i32(k); },
        [](SnapshotWriter& ww, const R2Label& v) { save_r2_label(ww, v); });
    w.sorted_map(
        t.dict, [](SnapshotWriter& ww, std::int64_t k) { ww.i64(k); },
        [](SnapshotWriter& ww, const DictEntry& v) {
          ww.i32(v.node);
          save_r2_label(ww, v.r2);
        });
  }
  w.i64(node_space_);
  w.i64(port_space_);
}

ExStretchScheme::ExStretchScheme(SnapshotReader& r)
    : names_(NameAssignment::load(r)), alphabet_(Alphabet::load(r)) {
  hierarchy_ = std::make_shared<const CoverHierarchy>(r);
  assignment_ = load_block_assignment(r);
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(names_.node_count())) {
    throw std::invalid_argument(
        "exstretch snapshot: table count does not match the naming");
  }
  tables_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    NodeTables t;
    t.nbr_r2 = r.map<std::unordered_map<NodeName, R2Label>>(
        [](SnapshotReader& rr) { return rr.i32(); }, load_r2_label, 8);
    t.dict = r.map<std::unordered_map<std::int64_t, DictEntry>>(
        [](SnapshotReader& rr) { return rr.i64(); },
        [](SnapshotReader& rr) {
          DictEntry e;
          e.node = rr.i32();
          e.r2 = load_r2_label(rr);
          return e;
        },
        8);
    tables_.push_back(std::move(t));
  }
  node_space_ = r.i64();
  port_space_ = r.i64();
}

ExStretchScheme::ExStretchScheme(const Digraph& g, const RoundtripMetric& metric,
                                 const NameAssignment& names, Rng& rng,
                                 Options options)
    : names_(names),
      alphabet_(g.node_count(), options.k),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const NodeId n = g.node_count();
  const int k = alphabet_.k();
  const std::int64_t q = alphabet_.q();
  const int threads = resolve_apsp_threads(options.threads);
  const Digraph reversed = g.reversed();
  hierarchy_ = std::make_shared<CoverHierarchy>(g, reversed, metric, k, threads);

  // Lemma 4 and item (2) only read Init_u up to the level-(k-1) neighborhood
  // q^{k-1}, so truncated rows suffice.
  const auto hood_rows = static_cast<NodeId>(
      std::min<std::int64_t>(alphabet_.power(k - 1), n));
  Neighborhoods hoods = compute_neighborhoods(metric, names_, hood_rows, threads);
  assignment_ =
      assign_blocks(alphabet_, metric, names_, hoods, rng, options.blocks);

  // S'_u = S_u + u's own block (Section 3.3).
  std::vector<std::vector<BlockId>> held(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    held[static_cast<std::size_t>(u)] =
        assignment_.blocks_of[static_cast<std::size_t>(u)];
    auto& s = held[static_cast<std::size_t>(u)];
    const BlockId own = alphabet_.block_of(names_.name_of(u));
    if (!std::binary_search(s.begin(), s.end(), own)) {
      s.insert(std::upper_bound(s.begin(), s.end(), own), own);
    }
  }

  // holders_by_prefix[level l] : prefix value -> sorted list of node ids
  // holding a block whose l-digit prefix equals the value (levels 1..k-1).
  std::vector<std::vector<std::vector<NodeId>>> holders(
      static_cast<std::size_t>(k));
  for (int level = 1; level <= k - 1; ++level) {
    holders[static_cast<std::size_t>(level)].assign(
        static_cast<std::size_t>(alphabet_.realizable_prefix_count(level)), {});
  }
  for (NodeId u = 0; u < n; ++u) {
    for (int level = 1; level <= k - 1; ++level) {
      auto& lists = holders[static_cast<std::size_t>(level)];
      // Dedup prefixes this node covers at this level.
      std::vector<PrefixValue> seen;
      for (BlockId b : held[static_cast<std::size_t>(u)]) {
        PrefixValue p = alphabet_.block_prefix_value(b, level);
        if (p >= static_cast<PrefixValue>(lists.size())) continue;
        if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
          seen.push_back(p);
          lists[static_cast<std::size_t>(p)].push_back(u);
        }
      }
    }
  }

  tables_.resize(static_cast<std::size_t>(n));
  // Both per-node table loops write only tables_[u], so they fan out over
  // the ticket pool; (2) and (3) fuse into one pass per node.
  parallel_tickets(n, threads, [&] {
    return [&](std::int64_t ticket) {
    const auto u = static_cast<NodeId>(ticket);
    auto& tab = tables_[static_cast<std::size_t>(u)];

    // (2): R2 for the immediate neighborhood N_1(u) (first q of Init_u).
    for (NodeId v : hoods.prefix(u, static_cast<NodeId>(q))) {
      if (v == u) continue;
      tab.nbr_r2.emplace(names_.name_of(v), compute_r2(*hierarchy_, u, v));
    }

    // (3a): per held block, per level i < k-1, per next digit tau: nearest
    // holder of the extended prefix + R2 to it.
    // (3b): i = k-1: the exact name "block + tau" + R2 to it.
    for (BlockId b : held[static_cast<std::size_t>(u)]) {
      for (int i = 0; i <= k - 1; ++i) {
        for (int tau = 0; tau < q; ++tau) {
          if (i < k - 1) {
            const PrefixValue p = alphabet_.block_prefix_value(b, i) * q + tau;
            if (p >= alphabet_.realizable_prefix_count(i + 1)) continue;
            const std::int64_t key = pack(i, p);
            if (tab.dict.contains(key)) continue;
            // Nearest holder of a block with (i+1)-prefix p, by (r, name).
            const auto& list =
                holders[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(p)];
            if (list.empty()) {
              throw std::logic_error("exstretch: realizable prefix without holder");
            }
            NodeId best = kNoNode;
            Dist best_r = kInfDist;
            for (NodeId h : list) {
              const Dist rr = metric.r(u, h);
              if (rr < best_r || (rr == best_r && best != kNoNode &&
                                  names_.name_of(h) < names_.name_of(best))) {
                best_r = rr;
                best = h;
              }
            }
            DictEntry entry;
            entry.node = names_.name_of(best);
            if (best != u) entry.r2 = compute_r2(*hierarchy_, u, best);
            tab.dict.emplace(key, std::move(entry));
          } else {
            const NodeName target = alphabet_.compose(b, tau);
            if (target == kNoNode) continue;
            const std::int64_t key = pack(i, target);
            if (tab.dict.contains(key)) continue;
            DictEntry entry;
            entry.node = target;
            const NodeId tid = names_.id_of(target);
            if (tid != u) entry.r2 = compute_r2(*hierarchy_, u, tid);
            tab.dict.emplace(key, std::move(entry));
          }
        }
      }
    }
    };
  });
}

Decision ExStretchScheme::advance(NodeId at, Header& h) const {
  const auto& tab = tables_[static_cast<std::size_t>(at)];
  const NodeName at_name = names_.name_of(at);
  const int k = alphabet_.k();
  while (h.hop < k) {
    const int i = h.hop;
    const PrefixValue p = alphabet_.prefix_value(h.dest, i + 1);
    auto it = tab.dict.find(pack(i, p));
    if (it == tab.dict.end()) {
      throw std::logic_error(
          "exstretch: waypoint lacks the dictionary entry its invariant promises");
    }
    const DictEntry& entry = it->second;
    if (entry.node == at_name) {
      ++h.hop;  // v_{i+1} == v_i: advance locally at zero cost
      continue;
    }
    // Push the retrace information and launch the leg (Fig. 4's push).
    h.stack.push_back(StackEntry{entry.r2.tree, entry.r2.label_u});
    h.leg = DtLeg{entry.r2.tree, entry.r2.label_v, true};
    h.waypoint = entry.node;
    ++h.hop;
    DtStep step = dt_step(*hierarchy_, at, h.leg);
    if (step.arrived) {
      throw std::logic_error("exstretch: fresh leg arrived instantly");
    }
    return Decision::forward_on(step.port);
  }
  if (at_name != h.dest) {
    throw std::logic_error("exstretch: hop count exhausted away from dest");
  }
  return Decision::deliver_here();
}

Decision ExStretchScheme::forward(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  switch (h.mode) {
    case Mode::kNew: {
      h.src = at_name;
      h.mode = Mode::kOutbound;
      if (at_name == h.dest) return Decision::deliver_here();
      // Storage item (2) shortcut: destination inside N_1(s).
      const auto& tab = tables_[static_cast<std::size_t>(at)];
      if (auto it = tab.nbr_r2.find(h.dest); it != tab.nbr_r2.end()) {
        h.stack.push_back(StackEntry{it->second.tree, it->second.label_u});
        h.leg = DtLeg{it->second.tree, it->second.label_v, true};
        h.waypoint = h.dest;
        h.hop = alphabet_.k();
        DtStep step = dt_step(*hierarchy_, at, h.leg);
        if (step.arrived) {
          throw std::logic_error("exstretch: neighbor leg arrived instantly");
        }
        return Decision::forward_on(step.port);
      }
      return advance(at, h);
    }
    case Mode::kOutbound: {
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (!step.arrived) return Decision::forward_on(step.port);
      if (at_name != h.waypoint) {
        throw std::logic_error("exstretch: leg arrived at a non-waypoint");
      }
      if (h.hop >= alphabet_.k()) {
        if (at_name != h.dest) {
          throw std::logic_error("exstretch: final hop is not the destination");
        }
        return Decision::deliver_here();
      }
      return advance(at, h);
    }
    case Mode::kReturn: {
      h.mode = Mode::kInbound;
      if (h.stack.empty()) {
        if (at_name != h.src) {
          throw std::logic_error("exstretch: empty stack away from source");
        }
        return Decision::deliver_here();
      }
      StackEntry e = h.stack.back();
      h.stack.pop_back();
      h.leg = DtLeg{e.tree, e.back_label, true};
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (step.arrived) {
        throw std::logic_error("exstretch: return leg arrived instantly");
      }
      return Decision::forward_on(step.port);
    }
    case Mode::kInbound: {
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (!step.arrived) return Decision::forward_on(step.port);
      if (h.stack.empty()) {
        if (at_name != h.src) {
          throw std::logic_error("exstretch: return ended away from source");
        }
        return Decision::deliver_here();
      }
      StackEntry e = h.stack.back();
      h.stack.pop_back();
      h.leg = DtLeg{e.tree, e.back_label, true};
      DtStep next = dt_step(*hierarchy_, at, h.leg);
      if (next.arrived) {
        throw std::logic_error("exstretch: chained return leg arrived instantly");
      }
      return Decision::forward_on(next.port);
    }
  }
  throw std::logic_error("exstretch: bad mode");
}

std::int64_t ExStretchScheme::header_bits(const Header& h) const {
  std::int64_t bits = 2 /* mode */ + 3 * bits_for(node_space_) +
                      bits_for(alphabet_.k() + 1) /* hop */;
  for (const auto& e : h.stack) {
    bits += bits_for(node_space_) + 8 /* tree ref */ +
            tree_label_bits(e.back_label, node_space_, port_space_);
  }
  bits += bits_for(node_space_) + 8 +
          tree_label_bits(h.leg.target, node_space_, port_space_) + 1;
  return bits;
}

double ExStretchScheme::stretch_bound() const {
  const int k = alphabet_.k();
  return r2_beta(k) * (std::pow(2.0, k) - 1.0);
}

void ExStretchScheme::audit(AuditReport& report) const {
  auto scope = report.scope("exstretch");
  {
    auto names_scope = report.scope("names");
    names_.audit(report);
  }
  alphabet_.audit(report);
  hierarchy_->audit(report);
  assignment_.audit(report, alphabet_);

  const auto n = static_cast<std::size_t>(names_.node_count());
  report.check("tables-sized", tables_.size() == n,
               "one table block per node");
  if (tables_.size() != n) return;

  // Dictionary shape: every key must decode to a valid (level, prefix) pair
  // and every stored waypoint (and neighborhood peer) must be a real name.
  const std::int64_t prefix_space = alphabet_.power(alphabet_.k());
  bool dict_ok = true;
  std::string dict_detail;
  for (std::size_t v = 0; dict_ok && v < n; ++v) {
    const NodeTables& t = tables_[v];
    for (const auto& [name, r2] : t.nbr_r2) {
      if (name < 0 || static_cast<std::size_t>(name) >= n) {
        dict_ok = false;
        dict_detail = "neighborhood R2 of node " + std::to_string(v) +
                      " keyed by an out-of-range name";
        break;
      }
    }
    for (const auto& [key, entry] : t.dict) {
      // Keys are pack(i, p) = i * q^k + p with waypoint level i in [0, k)
      // and p the (i+1)-digit target prefix value.
      const std::int64_t level = key / prefix_space;
      const std::int64_t prefix = key % prefix_space;
      if (key < 0 || level >= alphabet_.k() ||
          prefix >= alphabet_.power(static_cast<int>(level) + 1) ||
          entry.node < 0 || static_cast<std::size_t>(entry.node) >= n) {
        dict_ok = false;
        dict_detail = "dictionary of node " + std::to_string(v) +
                      " has an undecodable key or out-of-range waypoint";
        break;
      }
    }
  }
  report.check("dict-keys-decodable", dict_ok, std::move(dict_detail));
}

TableStats ExStretchScheme::table_stats() const {
  const auto n = static_cast<NodeId>(tables_.size());
  TableStats stats =
      hierarchy_node_stats(*hierarchy_, n, node_space_, port_space_);
  const std::int64_t id_bits = bits_for(node_space_);
  for (NodeId v = 0; v < n; ++v) {
    const auto& tab = tables_[static_cast<std::size_t>(v)];
    std::int64_t entries = 0, bits = 0;
    for (const auto& [name, r2] : tab.nbr_r2) {
      (void)name;
      ++entries;
      bits += id_bits + r2_label_bits(r2, node_space_, port_space_);
    }
    for (const auto& [key, entry] : tab.dict) {
      (void)key;
      ++entries;
      bits += 2 * id_bits /* key */ + id_bits +
              r2_label_bits(entry.r2, node_space_, port_space_);
    }
    stats.add(v, entries, bits);
  }
  return stats;
}

}  // namespace rtr
