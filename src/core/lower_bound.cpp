#include "core/lower_bound.h"

namespace rtr {

bool is_distance_symmetric(const RoundtripMetric& metric) {
  const NodeId n = metric.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (metric.d(u, v) != metric.d(v, u)) return false;
    }
  }
  return true;
}

}  // namespace rtr
