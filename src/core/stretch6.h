// The stretch-6 TINN compact roundtrip routing scheme (paper Section 2,
// pseudocode Fig. 3).
//
// Ingredients, exactly as the paper assembles them:
//   * N(u): the first ceil(sqrt n) nodes of Init_u (roundtrip order).
//   * Address space split into ceil(sqrt n)-sized *name* blocks B_i.
//   * Lemma 1 block distribution: every node stores O(log n) blocks; every
//     neighborhood contains a holder of every block.
//   * Lemma 2 substrate (Rtz3Scheme) providing addresses R3(x) and legs with
//     p(u,v) <= r(u,v) + d(u,v).
//
// Per-node storage (Section 2.1): (1) (v, R3(v)) for v in N(u); (2) a holder
// t in N(u) for every block; (3) the full dictionary of every held block;
// (4) the substrate's Tab3(u).  All O~(sqrt n).
//
// Routing from s to t: deliver locally if s = t; use R3(t) directly when
// stored (t in N(s) or t's block held at s); otherwise hop to the
// neighborhood's holder w of t's block, learn R3(t) there, continue to t.
// The acknowledgment returns via R3(s), written into the header at s.
// Lemma 3: total roundtrip <= 6 r(s,t).
#ifndef RTR_CORE_STRETCH6_H
#define RTR_CORE_STRETCH6_H

#include <memory>
#include <string>
#include <vector>

#include "core/names.h"
#include "dict/alphabet.h"
#include "dict/block_assignment.h"
#include "net/simulator.h"
#include "rtz/rtz3_scheme.h"
#include "util/flat_vec.h"

namespace rtr {

class Stretch6Scheme {
 public:
  struct Options {
    Rtz3Scheme::Options substrate;
    BlockAssignmentOptions blocks;
    /// Section 2.2's remarked variant: return to the source after the
    /// dictionary lookup before heading to the destination ("slightly
    /// simpler to analyze ... same worst-case stretch. However it can
    /// result in longer paths").  Off by default, measured by the
    /// ablation bench.
    bool detour_via_source = false;
    /// Construction fan-out (neighborhoods + per-node tables); <= 0 resolves
    /// the process default.  Bit-identical output for any value.
    int threads = 0;
  };

  /// Builds tables for the given graph/naming.  The substrate is built
  /// internally; `metric` must be the graph's roundtrip metric.
  Stretch6Scheme(const Digraph& g, const RoundtripMetric& metric,
                 const NameAssignment& names, Rng& rng, Options options);
  Stretch6Scheme(const Digraph& g, const RoundtripMetric& metric,
                 const NameAssignment& names, Rng& rng)
      : Stretch6Scheme(g, metric, names, rng, Options{}) {}

  /// Snapshot path: rehydrates tables (and the substrate's) saved with
  /// save(); `g` must be the snapshot's own graph and outlive the scheme.
  Stretch6Scheme(SnapshotReader& r, const Digraph& g);
  void save(SnapshotWriter& w) const;

  /// Appends every table (and the substrate's, under `prefix` + "s/") as
  /// typed arena sections under `prefix`.
  void save_arena(ArenaWriter& w, const std::string& prefix) const;

  /// Rebuilds a scheme whose tables are zero-copy views into an arena.  `g`
  /// and `names` are the snapshot's own graph/name sections; the caller
  /// keeps `g` alive (exactly as the build constructor does).
  [[nodiscard]] static Stretch6Scheme from_arena(const ArenaView& a,
                                                 const std::string& prefix,
                                                 const Digraph& g,
                                                 const NameAssignment& names);

  enum class Mode : std::uint8_t { kNew, kOutbound, kReturn, kInbound };

  /// Outbound sub-phase (only kViaSource is specific to the detour variant).
  enum class Phase : std::uint8_t { kToDest, kToDict, kBackToSource };

  struct Header {
    Mode mode = Mode::kNew;
    NodeName dest = kNoNode;  // the ONLY field present at injection (TINN)
    NodeName src = kNoNode;
    RtzAddress src_addr;       // written at the source, used by the ack
    NodeName dict_node = kNoNode;  // w, when a remote dictionary lookup runs
    Phase phase = Phase::kToDest;
    RtzAddress learned_dest;   // detour variant: R3(t) learned at w
    LegHeader leg;             // current substrate leg
  };

  [[nodiscard]] Header make_packet(NodeName dest) const {
    Header h;
    h.dest = dest;
    return h;
  }
  void prepare_return(Header& h) const { h.mode = Mode::kReturn; }
  [[nodiscard]] Decision forward(NodeId at, Header& h) const;
  [[nodiscard]] std::int64_t header_bits(const Header& h) const;

  [[nodiscard]] TableStats table_stats() const;
  [[nodiscard]] std::string name() const { return "stretch6(TINN)"; }

  /// Lemma 3: total roundtrip <= 6 r(s,t) (the detour variant keeps the same
  /// worst case, Section 2.2).
  [[nodiscard]] double stretch_bound() const { return 6.0; }

  [[nodiscard]] const Rtz3Scheme& substrate() const { return *substrate_; }
  [[nodiscard]] const BlockAssignment& block_assignment() const {
    return assignment_;
  }
  /// Neighborhood size ceil(sqrt n) actually used.
  [[nodiscard]] NodeId neighborhood_size() const { return hood_size_; }

  /// Auditable: delegates to the substrate, alphabet, and block assignment,
  /// then checks the per-node dictionaries (sorted unique r3 names, one
  /// holder per relevant block, and every recorded holder actually holding
  /// the block it is advertised for).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;

  /// Arena-load path: the static from_arena opens the meta stream, then this
  /// constructor decodes it interleaved with the flat sections.
  Stretch6Scheme(SnapshotReader& meta, const ArenaView& a,
                 const std::string& prefix, const Digraph& g,
                 const NameAssignment& names);

  /// Flattens per-node sorted r3 rows into the CSR arrays (identical output
  /// for the build path and the v1 decode).
  void adopt_r3_rows(const std::vector<std::vector<NodeName>>& rows);

  /// Local lookup of R3(t) in (1)/(3); nullptr if absent.
  [[nodiscard]] const RtzAddress* lookup_r3(NodeId at, NodeName t) const {
    const auto vz = static_cast<std::size_t>(at);
    const NodeName* base = r3_names_.data();
    const NodeName* first = base + r3_off_[vz];
    const NodeName* last = base + r3_off_[vz + 1];
    if (!std::binary_search(first, last, t)) return nullptr;
    return &substrate_->address_of_name(t);
  }

  NameAssignment names_;
  Alphabet alphabet_;
  NodeId hood_size_;
  std::shared_ptr<const Rtz3Scheme> substrate_;
  bool detour_via_source_ = false;
  BlockAssignment assignment_;
  // (1) + (3): sorted names whose (name, R3) pair node v stores --
  // neighborhood members and held-block entries -- in CSR form: row v is
  // r3_names_[r3_off_[v] .. r3_off_[v+1]).  The address payloads live once
  // in the substrate's per-node table (lookup_r3 resolves through it), so
  // the dictionary costs one name per entry in memory and in snapshots;
  // table_stats still accounts full per-entry address bits.
  FlatVec<std::int64_t> r3_off_;  // n + 1
  FlatVec<NodeName> r3_names_;
  // (2): block id -> holder name within N(u), row-major n x block_count_.
  FlatVec<NodeName> holder_of_;
  std::int64_t block_count_ = 0;
  /// Keepalive when the arrays are views into a mapped arena.
  std::shared_ptr<const ArenaStorage> arena_;
  std::int64_t node_space_ = 0;
};

}  // namespace rtr

#endif  // RTR_CORE_STRETCH6_H
