#include "core/polystretch.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "io/snapshot_format.h"
#include "util/bit_cost.h"
#include "util/parallel.h"

namespace rtr {

void PolyStretchScheme::save(SnapshotWriter& w) const {
  names_.save(w);
  alphabet_.save(w);
  hierarchy_->save(w);
  w.u64(tables_.size());
  for (const NodeTables& t : tables_) {
    w.sorted_map(
        t.per_tree, [](SnapshotWriter& ww, std::int64_t k) { ww.i64(k); },
        [](SnapshotWriter& ww, const PerTree& per) {
          save_tree_label(ww, per.own_label);
          ww.sorted_map(
              per.dict, [](SnapshotWriter& w3, std::int64_t k) { w3.i64(k); },
              [](SnapshotWriter& w3, const DictEntry& e) {
                w3.i32(e.node);
                save_tree_label(w3, e.label);
              });
        });
  }
  w.i64(node_space_);
  w.i64(port_space_);
}

PolyStretchScheme::PolyStretchScheme(SnapshotReader& r)
    : names_(NameAssignment::load(r)), alphabet_(Alphabet::load(r)) {
  hierarchy_ = std::make_shared<const CoverHierarchy>(r);
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(names_.node_count())) {
    throw std::invalid_argument(
        "polystretch snapshot: table count does not match the naming");
  }
  tables_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    NodeTables t;
    t.per_tree = r.map<std::unordered_map<std::int64_t, PerTree>>(
        [](SnapshotReader& rr) { return rr.i64(); },
        [](SnapshotReader& rr) {
          PerTree per;
          per.own_label = load_tree_label(rr);
          per.dict = rr.map<std::unordered_map<std::int64_t, DictEntry>>(
              [](SnapshotReader& r3) { return r3.i64(); },
              [](SnapshotReader& r3) {
                DictEntry e;
                e.node = r3.i32();
                e.label = load_tree_label(r3);
                return e;
              },
              8);
          return per;
        },
        8);
    tables_.push_back(std::move(t));
  }
  node_space_ = r.i64();
  port_space_ = r.i64();
}

PolyStretchScheme::PolyStretchScheme(const Digraph& g,
                                     const RoundtripMetric& metric,
                                     const NameAssignment& names,
                                     Options options)
    : names_(names),
      alphabet_(g.node_count(), options.k),
      node_space_(g.node_count()),
      port_space_(g.port_space()) {
  const NodeId n = g.node_count();
  const int k = alphabet_.k();
  const std::int64_t q = alphabet_.q();
  const int threads = resolve_apsp_threads(options.threads);
  const Digraph reversed = g.reversed();
  hierarchy_ =
      std::make_shared<CoverHierarchy>(g, reversed, metric, k, threads);

  tables_.resize(static_cast<std::size_t>(n));
  for (std::int32_t level = 0; level < hierarchy_->level_count(); ++level) {
    const HierarchyLevel& lvl = hierarchy_->level(level);
    for (std::int32_t t = 0; t < static_cast<std::int32_t>(lvl.trees.size()); ++t) {
      const DoubleTree& tree = lvl.trees[static_cast<std::size_t>(t)];
      const TreeRef ref{level, t};
      // Group members by (j+1)-digit name prefix for nearest-extension
      // queries: prefix value -> member ids.
      std::vector<std::unordered_map<std::int64_t, std::vector<NodeId>>>
          by_prefix(static_cast<std::size_t>(k));
      for (NodeId v : tree.members()) {
        const NodeName vn = names_.name_of(v);
        for (int j = 0; j < k; ++j) {
          by_prefix[static_cast<std::size_t>(j)][alphabet_.prefix_value(vn, j + 1)]
              .push_back(v);
        }
      }
      // Tree members are unique, so each ticket writes a distinct
      // tables_[u]; the by_prefix index and the metric are only read.
      const std::vector<NodeId>& members = tree.members();
      parallel_tickets(static_cast<std::int64_t>(members.size()), threads, [&] {
        return [&](std::int64_t ticket) {
        const NodeId u = members[static_cast<std::size_t>(ticket)];
        auto& per = tables_[static_cast<std::size_t>(u)].per_tree[tree_key(ref)];
        per.own_label = tree.out_router().label(u);
        const NodeName un = names_.name_of(u);
        // (2c): for every j and tau, the nearest member extending u's own
        // j-digit prefix with digit tau, if one exists.
        for (int j = 0; j < k; ++j) {
          for (int tau = 0; tau < q; ++tau) {
            const PrefixValue p = alphabet_.prefix_value(un, j) * q + tau;
            auto it = by_prefix[static_cast<std::size_t>(j)].find(p);
            if (it == by_prefix[static_cast<std::size_t>(j)].end()) continue;
            NodeId best = kNoNode;
            Dist best_r = kInfDist;
            for (NodeId v : it->second) {
              if (v == u) {  // a zero-cost extension: always the nearest
                best = u;
                best_r = 0;
                break;
              }
              const Dist rr = metric.r(u, v);
              if (rr < best_r || (rr == best_r && best != kNoNode &&
                                  names_.name_of(v) < names_.name_of(best))) {
                best_r = rr;
                best = v;
              }
            }
            DictEntry entry;
            entry.node = names_.name_of(best);
            entry.label = tree.out_router().label(best);
            per.dict.emplace(static_cast<std::int64_t>(j) * q + tau,
                             std::move(entry));
          }
        }
        };
      });
    }
  }
}

Decision PolyStretchScheme::start_level(NodeId at, Header& h) const {
  // `at` is the source.  Pick its home tree for the current level and run
  // NextNode locally; escalate locally while the level yields no progress.
  while (true) {
    if (h.level >= hierarchy_->level_count()) {
      throw std::logic_error("polystretch: levels exhausted without delivery");
    }
    h.tree = hierarchy_->home(at, h.level);
    const auto& per = tables_[static_cast<std::size_t>(at)].per_tree.at(
        tree_key(h.tree));
    h.src_label = per.own_label;
    Decision d = next_hop(at, h);
    // next_hop either launched a leg (forward), delivered (s == t), or asked
    // to fall back to the source -- which we are already at: escalate.
    if (!d.deliver || names_.name_of(at) == h.dest) return d;
    ++h.level;
  }
}

Decision PolyStretchScheme::next_hop(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  if (at_name == h.dest) {
    h.found = true;
    return Decision::deliver_here();
  }
  const auto& per_tree = tables_[static_cast<std::size_t>(at)].per_tree;
  auto per_it = per_tree.find(tree_key(h.tree));
  if (per_it == per_tree.end()) {
    throw std::logic_error("polystretch: waypoint outside the current tree");
  }
  const PerTree& per = per_it->second;

  const int h_match = alphabet_.lcp(at_name, h.dest);  // digits already matched
  const int tau = alphabet_.digit(h.dest, h_match);
  auto it = per.dict.find(static_cast<std::int64_t>(h_match) * alphabet_.q() + tau);
  if (it != per.dict.end() && it->second.node != at_name) {
    // Extend the match: trip to the entry through the tree's center.
    h.waypoint = it->second.node;
    h.leg = DtLeg{h.tree, it->second.label, true};
    DtStep step = dt_step(*hierarchy_, at, h.leg);
    if (step.arrived) {
      throw std::logic_error("polystretch: fresh trip arrived instantly");
    }
    return Decision::forward_on(step.port);
  }
  if (it != per.dict.end() && it->second.node == at_name) {
    // The nearest extension is this node itself, yet it is not t: the next
    // digit cannot be extended further here; treat as failure.  (Cannot
    // happen when t is in the tree: t extends every prefix of itself and
    // at != t, and at already matches h_match digits, so the stored nearest
    // extension matching h_match+1 > lcp(at, t) digits cannot be at.)
    throw std::logic_error("polystretch: self-extension at a non-destination");
  }
  // No extension in this tree: fall back to the source (failure detected).
  if (at_name == h.src) return Decision::deliver_here();  // caller escalates
  h.waypoint = h.src;
  h.leg = DtLeg{h.tree, h.src_label, true};
  DtStep step = dt_step(*hierarchy_, at, h.leg);
  if (step.arrived) {
    throw std::logic_error("polystretch: fallback trip arrived instantly");
  }
  return Decision::forward_on(step.port);
}

Decision PolyStretchScheme::forward(NodeId at, Header& h) const {
  const NodeName at_name = names_.name_of(at);
  switch (h.mode) {
    case Mode::kNew: {
      h.src = at_name;
      h.level = 0;
      h.mode = Mode::kEnroute;
      if (at_name == h.dest) {
        h.found = true;
        return Decision::deliver_here();
      }
      return start_level(at, h);
    }
    case Mode::kEnroute: {
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (!step.arrived) return Decision::forward_on(step.port);
      if (at_name != h.waypoint) {
        throw std::logic_error("polystretch: trip ended at a non-waypoint");
      }
      if (h.found) {
        // Acknowledgment arriving back at the source.
        if (at_name != h.src) {
          throw std::logic_error("polystretch: ack ended away from source");
        }
        return Decision::deliver_here();
      }
      if (at_name == h.src) {
        // Failure return: escalate one level and retry (Fig. 11).
        ++h.level;
        return start_level(at, h);
      }
      return next_hop(at, h);
    }
    case Mode::kReturn: {
      // Host at t re-injects the packet; route to SourceLabel in the same
      // tree (Fig. 11's ReturnPacket branch).
      h.mode = Mode::kEnroute;
      if (at_name == h.src) return Decision::deliver_here();
      h.waypoint = h.src;
      h.leg = DtLeg{h.tree, h.src_label, true};
      DtStep step = dt_step(*hierarchy_, at, h.leg);
      if (step.arrived) {
        throw std::logic_error("polystretch: return trip arrived instantly");
      }
      return Decision::forward_on(step.port);
    }
  }
  throw std::logic_error("polystretch: bad mode");
}

std::int64_t PolyStretchScheme::header_bits(const Header& h) const {
  return 2 /* mode */ + 3 * bits_for(node_space_) /* dest, src, waypoint */ +
         1 /* found */ + bits_for(hierarchy_->level_count() + 1) +
         bits_for(node_space_) + 8 /* tree ref */ +
         tree_label_bits(h.src_label, node_space_, port_space_) +
         tree_label_bits(h.leg.target, node_space_, port_space_) + 1;
}

void PolyStretchScheme::audit(AuditReport& report) const {
  auto scope = report.scope("polystretch");
  {
    auto names_scope = report.scope("names");
    names_.audit(report);
  }
  alphabet_.audit(report);
  hierarchy_->audit(report);

  const auto n = static_cast<std::size_t>(names_.node_count());
  report.check("tables-sized", tables_.size() == n,
               "one table block per node");
  if (tables_.size() != n) return;

  // Per-tree storage: each referenced tree must exist in the hierarchy and
  // contain the node; dictionary waypoints must be real names.
  bool refs_ok = true;
  std::string refs_detail;
  for (std::size_t v = 0; refs_ok && v < n; ++v) {
    for (const auto& [key, per_tree] : tables_[v].per_tree) {
      const TreeRef ref{static_cast<std::int32_t>(key / (1 << 24)),
                        static_cast<std::int32_t>(key % (1 << 24))};
      if (ref.level < 0 || ref.level >= hierarchy_->level_count() ||
          ref.tree < 0 ||
          static_cast<std::size_t>(ref.tree) >=
              hierarchy_->level(ref.level).trees.size() ||
          !hierarchy_->tree(ref).contains(static_cast<NodeId>(v))) {
        refs_ok = false;
        refs_detail = "node " + std::to_string(v) +
                      " stores state for a tree that does not contain it";
        break;
      }
      for (const auto& [dkey, entry] : per_tree.dict) {
        if (entry.node < 0 || static_cast<std::size_t>(entry.node) >= n) {
          refs_ok = false;
          refs_detail = "per-tree dictionary of node " + std::to_string(v) +
                        " stores an out-of-range waypoint";
          break;
        }
      }
      if (!refs_ok) break;
    }
  }
  report.check("per-tree-refs-valid", refs_ok, std::move(refs_detail));
}

TableStats PolyStretchScheme::table_stats() const {
  const auto n = static_cast<NodeId>(tables_.size());
  TableStats stats =
      hierarchy_node_stats(*hierarchy_, n, node_space_, port_space_);
  const std::int64_t id_bits = bits_for(node_space_);
  for (NodeId v = 0; v < n; ++v) {
    std::int64_t entries = 0, bits = 0;
    for (const auto& [key, per] : tables_[static_cast<std::size_t>(v)].per_tree) {
      (void)key;
      ++entries;  // own label
      bits += tree_label_bits(per.own_label, node_space_, port_space_);
      for (const auto& [dk, entry] : per.dict) {
        (void)dk;
        ++entries;
        bits += id_bits /* key */ + id_bits +
                tree_label_bits(entry.label, node_space_, port_space_);
      }
    }
    stats.add(v, entries, bits);
  }
  return stats;
}

}  // namespace rtr
