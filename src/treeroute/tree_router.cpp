#include "treeroute/tree_router.h"

#include <algorithm>
#include <cmath>
#include <stack>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/snapshot_format.h"
#include "util/bit_cost.h"

namespace rtr {

TreeRouter::TreeRouter(const OutTree& tree) : root_(tree.root) {
  const auto n = tree.dist.size();
  tables_.assign(n, TreeNodeTable{});
  parent_.assign(n, kNoNode);
  parent_port_.assign(n, kNoPort);
  heavy_child_.assign(n, kNoNode);

  // Children lists over reachable members only.
  std::vector<std::vector<NodeId>> children(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.dist[v] >= kInfDist) continue;
    members_.push_back(static_cast<NodeId>(v));
    parent_[v] = tree.parent[v];
    parent_port_[v] = tree.parent_port[v];
    if (tree.parent[v] != kNoNode) {
      children[static_cast<std::size_t>(tree.parent[v])].push_back(
          static_cast<NodeId>(v));
    }
  }
  member_count_ = static_cast<NodeId>(members_.size());
  if (member_count_ == 0) return;

  // Subtree sizes by processing members in decreasing tree depth order
  // (distance order suffices: a child is strictly farther than its parent).
  std::vector<NodeId> by_depth = members_;
  std::sort(by_depth.begin(), by_depth.end(), [&](NodeId a, NodeId b) {
    return tree.dist[static_cast<std::size_t>(a)] >
           tree.dist[static_cast<std::size_t>(b)];
  });
  std::vector<std::int64_t> subtree(n, 1);
  for (NodeId v : by_depth) {
    NodeId p = parent_[static_cast<std::size_t>(v)];
    if (p != kNoNode) subtree[static_cast<std::size_t>(p)] += subtree[static_cast<std::size_t>(v)];
  }

  // Heavy child per node.
  for (NodeId v : members_) {
    std::int64_t best = -1;
    for (NodeId c : children[static_cast<std::size_t>(v)]) {
      if (subtree[static_cast<std::size_t>(c)] > best) {
        best = subtree[static_cast<std::size_t>(c)];
        heavy_child_[static_cast<std::size_t>(v)] = c;
        tables_[static_cast<std::size_t>(v)].heavy_port =
            parent_port_[static_cast<std::size_t>(c)];
      }
    }
  }

  // Iterative preorder DFS assigns dfs_in.
  std::int32_t counter = 0;
  std::stack<NodeId> todo;
  todo.push(root_);
  while (!todo.empty()) {
    NodeId v = todo.top();
    todo.pop();
    tables_[static_cast<std::size_t>(v)].dfs_in = counter++;
    for (NodeId c : children[static_cast<std::size_t>(v)]) todo.push(c);
  }
}

void TreeRouter::audit(AuditReport& report) const {
  auto scope = report.scope("tree");
  const auto n = tables_.size();

  report.check("arrays-sized",
               parent_.size() == n && parent_port_.size() == n &&
                   heavy_child_.size() == n &&
                   members_.size() == static_cast<std::size_t>(member_count_),
               "per-node arrays and the member list must agree");
  if (parent_.size() != n || parent_port_.size() != n ||
      heavy_child_.size() != n ||
      members_.size() != static_cast<std::size_t>(member_count_)) {
    return;  // the walks below index these arrays per member
  }
  if (member_count_ == 0) {
    report.check("root-is-member", true, "empty tree");
    return;
  }

  bool members_ok = contains(root_) &&
                    parent_[static_cast<std::size_t>(root_)] == kNoNode;
  std::string member_detail =
      members_ok ? "" : "root missing or has a parent";
  for (const NodeId v : members_) {
    if (!members_ok) break;
    if (!contains(v)) {
      members_ok = false;
      member_detail = "listed member " + std::to_string(v) + " has no table";
    } else if (v != root_) {
      const NodeId p = parent_[static_cast<std::size_t>(v)];
      if (p == kNoNode || !contains(p)) {
        members_ok = false;
        member_detail = "member " + std::to_string(v) +
                        " has a missing or non-member parent";
      }
    }
  }
  report.check("root-is-member", members_ok, std::move(member_detail));
  if (!members_ok) return;

  // Parent pointers must be acyclic and reach the root: a chain longer than
  // the member count has necessarily revisited a node.
  bool acyclic = true;
  std::string cycle_detail;
  for (const NodeId v : members_) {
    NodeId x = v;
    NodeId steps = 0;
    while (x != root_ && steps <= member_count_) {
      x = parent_[static_cast<std::size_t>(x)];
      ++steps;
    }
    if (x != root_) {
      acyclic = false;
      cycle_detail = "parent chain of member " + std::to_string(v) +
                     " does not reach the root (cycle)";
      break;
    }
  }
  report.check("parents-acyclic", acyclic, std::move(cycle_detail));

  bool dfs_ok = true;
  std::string dfs_detail;
  std::vector<bool> dfs_seen(static_cast<std::size_t>(member_count_), false);
  for (const NodeId v : members_) {
    const std::int32_t dfs = tables_[static_cast<std::size_t>(v)].dfs_in;
    if (dfs < 0 || dfs >= member_count_ ||
        dfs_seen[static_cast<std::size_t>(dfs)]) {
      dfs_ok = false;
      dfs_detail = "dfs number of member " + std::to_string(v) +
                   " out of range or duplicated";
      break;
    }
    dfs_seen[static_cast<std::size_t>(dfs)] = true;
  }
  report.check("dfs-numbers-unique", dfs_ok, std::move(dfs_detail));

  // Heavy links: a recorded heavy child must be a member child of its node
  // with the matching port; a node without one must present kNoPort (the
  // leaf condition tree_next_port uses to detect off-path packets).
  bool heavy_ok = true;
  std::string heavy_detail;
  for (const NodeId v : members_) {
    const NodeId h = heavy_child_[static_cast<std::size_t>(v)];
    const Port hp = tables_[static_cast<std::size_t>(v)].heavy_port;
    if (h == kNoNode) {
      if (hp != kNoPort) {
        heavy_ok = false;
        heavy_detail = "member " + std::to_string(v) +
                       " has a heavy port but no heavy child";
        break;
      }
      continue;
    }
    if (!contains(h) || parent_[static_cast<std::size_t>(h)] != v ||
        hp != parent_port_[static_cast<std::size_t>(h)]) {
      heavy_ok = false;
      heavy_detail = "heavy link of member " + std::to_string(v) +
                     " is not a child edge with the matching port";
      break;
    }
  }
  report.check("heavy-links-consistent", heavy_ok, std::move(heavy_detail));

  if (acyclic) {
    std::int64_t max_hops = 0;
    for (const NodeId v : members_) {
      max_hops = std::max(
          max_hops, static_cast<std::int64_t>(label(v).light_hops.size()));
    }
    const double budget =
        report.budgets().label_slack *
        std::floor(std::log2(std::max<double>(2.0,
                                              static_cast<double>(member_count_))));
    report.measure("light-hops", static_cast<double>(max_hops), budget,
                   "longest light-hop list vs label_slack * floor(log2 |tree|)");
  }
}

void save_tree_node_table(SnapshotWriter& w, const TreeNodeTable& t) {
  w.i32(t.dfs_in);
  w.i32(t.heavy_port);
}

TreeNodeTable load_tree_node_table(SnapshotReader& r) {
  TreeNodeTable t;
  t.dfs_in = r.i32();
  t.heavy_port = r.i32();
  return t;
}

void save_tree_label(SnapshotWriter& w, const TreeLabel& label) {
  // Same wire layout as SnapshotWriter::vec (u64 count + elements): the
  // small-buffer LightHops is a storage change only, snapshots are unchanged.
  w.i32(label.dfs_in);
  w.u64(label.light_hops.size());
  for (const auto& [tail_dfs, port] : label.light_hops) {
    w.i32(tail_dfs);
    w.i32(port);
  }
}

TreeLabel load_tree_label(SnapshotReader& r) {
  TreeLabel label;
  label.dfs_in = r.i32();
  // Route through SnapshotReader::vec so the implausible-count guard stays
  // in force, then repack into the small-buffer representation.
  const auto hops = r.vec<std::pair<std::int32_t, Port>>(
      [](SnapshotReader& rr) {
        const std::int32_t dfs = rr.i32();
        const Port port = rr.i32();
        return std::make_pair(dfs, port);
      },
      8);
  for (const auto& hop : hops) label.light_hops.push_back(hop);
  return label;
}

void TreeRouter::save(SnapshotWriter& w) const {
  w.i32(root_);
  w.i32(member_count_);
  w.vec(tables_, save_tree_node_table);
  w.vec_i32(parent_);
  w.vec_i32(parent_port_);
  w.vec_i32(heavy_child_);
  w.vec_i32(members_);
}

TreeRouter::TreeRouter(SnapshotReader& r) {
  root_ = r.i32();
  member_count_ = r.i32();
  tables_ = r.vec<TreeNodeTable>(load_tree_node_table, 8);
  parent_ = r.vec_i32();
  parent_port_ = r.vec_i32();
  heavy_child_ = r.vec_i32();
  members_ = r.vec_i32();
}

TreeLabel TreeRouter::label(NodeId v) const {
  if (!contains(v)) throw std::invalid_argument("TreeRouter::label: not a member");
  TreeLabel lab;
  lab.dfs_in = tables_[static_cast<std::size_t>(v)].dfs_in;
  // Walk v -> root collecting light edges, then reverse into root->v order.
  NodeId x = v;
  while (parent_[static_cast<std::size_t>(x)] != kNoNode) {
    NodeId p = parent_[static_cast<std::size_t>(x)];
    if (heavy_child_[static_cast<std::size_t>(p)] != x) {
      lab.light_hops.emplace_back(tables_[static_cast<std::size_t>(p)].dfs_in,
                                  parent_port_[static_cast<std::size_t>(x)]);
    }
    x = p;
  }
  std::reverse(lab.light_hops.begin(), lab.light_hops.end());
  return lab;
}

Port tree_next_port(const TreeNodeTable& at, const TreeLabel& target) {
  if (at.dfs_in == target.dfs_in) return kNoPort;
  for (const auto& [tail_dfs, port] : target.light_hops) {
    if (tail_dfs == at.dfs_in) return port;
  }
  if (at.heavy_port == kNoPort) {
    throw std::logic_error("tree_next_port: node is off the root->target path");
  }
  return at.heavy_port;
}

std::int64_t tree_label_bits(const TreeLabel& label, std::int64_t node_space,
                             std::int64_t port_space) {
  const std::int64_t id_bits = bits_for(node_space);
  const std::int64_t port_bits = bits_for(port_space);
  return id_bits +  // dfs_in
         static_cast<std::int64_t>(label.light_hops.size()) * (id_bits + port_bits) +
         bits_for(node_space);  // length field
}

}  // namespace rtr
