// Fixed-port tree routing (Lemma 14, after Thorup-Zwick [39] and
// Fraigniaud-Gavoille [18]).
//
// Given a shortest-path out-tree rooted at r, the scheme routes a packet from
// r to any node v along the optimal tree path, with
//   * O(1) words stored per tree node (its DFS number and the port of its
//     heavy child), and
//   * an O(log^2 n)-bit address for v.
//
// The construction is the classic heavy-path decomposition: every node keeps
// the port toward its child with the largest subtree ("heavy child").  The
// address of v lists the (node, port) pairs of the *light* edges on the
// root->v path -- at most floor(log2 n) of them, since crossing a light edge
// at least halves the subtree size.  Forwarding at node x: if x is the
// target, deliver; if x appears in the address's light list, take the listed
// port; otherwise take the heavy port.  Packets enter a tree only at its root
// in all of our uses, so no off-path case arises (we still detect and reject
// it defensively).
#ifndef RTR_TREEROUTE_TREE_ROUTER_H
#define RTR_TREEROUTE_TREE_ROUTER_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/dijkstra.h"
#include "util/types.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h

/// Per-node state a tree member stores for one tree: O(1) words.
struct TreeNodeTable {
  std::int32_t dfs_in = -1;    // this node's DFS number within the tree
  Port heavy_port = kNoPort;   // port to the heavy child (kNoPort at leaves)
};
static_assert(sizeof(TreeNodeTable) == 8);
static_assert(std::is_trivially_copyable_v<TreeNodeTable>);

/// One light edge of a tree label in arena-storable form: labels that live
/// inside a relocatable snapshot arena are CSR-packed as (per-entry dfs,
/// hop ranges) over one flat LightHop array instead of per-label small
/// buffers.
struct LightHop {
  std::int32_t dfs = -1;   // DFS number of the light edge's tail
  Port port = kNoPort;     // port at that tail
};
static_assert(sizeof(LightHop) == 8);
static_assert(std::is_trivially_copyable_v<LightHop>);

/// Small-buffer sequence for a label's light edges.  Lemma 14 bounds the
/// count by floor(log2 |tree|), so labels of trees up to 2^8 members fit
/// entirely inline (no heap allocation per label -- the dominant case: ball
/// trees hold O~(sqrt n) members); deeper labels spill to a heap vector and
/// stay contiguous, so pointer iteration and std::reverse keep working.
class LightHops {
 public:
  using value_type = std::pair<std::int32_t, Port>;
  using iterator = value_type*;
  using const_iterator = const value_type*;
  static constexpr std::size_t kInlineCapacity = 8;

  LightHops() = default;
  LightHops(std::initializer_list<value_type> hops) {
    for (const value_type& hop : hops) push_back(hop);
  }
  LightHops(const LightHops&) = default;
  LightHops& operator=(const LightHops&) = default;
  LightHops(LightHops&& other) noexcept
      : inline_(other.inline_),
        spill_(std::move(other.spill_)),
        size_(other.size_) {
    other.size_ = 0;
  }
  LightHops& operator=(LightHops&& other) noexcept {
    if (this != &other) {
      inline_ = other.inline_;
      spill_ = std::move(other.spill_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  void clear() {
    size_ = 0;
    spill_.clear();
  }

  void emplace_back(std::int32_t dfs, Port port) {
    if (spill_.empty() && size_ < kInlineCapacity) {
      inline_[size_++] = value_type(dfs, port);
      return;
    }
    if (spill_.empty()) {
      // First spill: move the inline prefix so the sequence stays contiguous.
      spill_.reserve(2 * kInlineCapacity);
      spill_.assign(inline_.begin(), inline_.begin() + size_);
    }
    spill_.emplace_back(dfs, port);
    ++size_;
  }
  void push_back(const value_type& hop) { emplace_back(hop.first, hop.second); }

  [[nodiscard]] iterator begin() {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  [[nodiscard]] iterator end() { return begin() + size_; }
  [[nodiscard]] const_iterator begin() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  [[nodiscard]] const_iterator end() const { return begin() + size_; }

  [[nodiscard]] const value_type& operator[](std::size_t i) const {
    return begin()[i];
  }

  [[nodiscard]] bool operator==(const LightHops& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }

 private:
  std::array<value_type, kInlineCapacity> inline_{};
  std::vector<value_type> spill_;
  std::size_t size_ = 0;
};

/// The routable address of a node within one tree: O(log^2 n) bits.
struct TreeLabel {
  std::int32_t dfs_in = -1;
  /// (dfs number of the light edge's tail, port at that tail), in root->v
  /// order.  At most floor(log2 |tree|) entries.
  LightHops light_hops;
};

/// Immutable routing structure for one tree.  Holds every member's
/// TreeNodeTable and can mint labels; per-member state is O(1) words as
/// Lemma 14 requires (labels are computed from the tree, not stored).
class TreeRouter {
 public:
  /// Builds from a shortest-path out-tree; nodes unreachable in the tree
  /// (dist == kInfDist) are not members.
  explicit TreeRouter(const OutTree& tree);

  /// Snapshot path: rehydrates a router saved with save().
  explicit TreeRouter(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] bool contains(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < tables_.size() &&
           tables_[static_cast<std::size_t>(v)].dfs_in >= 0;
  }
  [[nodiscard]] NodeId member_count() const { return member_count_; }

  /// The O(1)-word table node v stores.  Requires contains(v).
  [[nodiscard]] const TreeNodeTable& table(NodeId v) const {
    return tables_[static_cast<std::size_t>(v)];
  }

  /// The address of v (root->v light edges).  Requires contains(v).
  [[nodiscard]] TreeLabel label(NodeId v) const;

  /// Members in no particular order.
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }

  /// Auditable: member bookkeeping, acyclic parent pointers reaching the
  /// root, unique DFS numbers, heavy-child/heavy-port consistency, and the
  /// Lemma 14 bound of at most label_slack * floor(log2 |tree|) light hops
  /// on every member's address.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  NodeId root_ = kNoNode;
  NodeId member_count_ = 0;
  std::vector<TreeNodeTable> tables_;
  std::vector<NodeId> parent_;      // within-tree parent (for label walks)
  std::vector<Port> parent_port_;   // port at parent toward this node
  std::vector<NodeId> heavy_child_;
  std::vector<NodeId> members_;
};

/// Snapshot encoding of the O(1)-word table and the O(log^2 n)-bit label;
/// shared by every scheme that persists tree-routing state.
void save_tree_node_table(SnapshotWriter& w, const TreeNodeTable& t);
[[nodiscard]] TreeNodeTable load_tree_node_table(SnapshotReader& r);
void save_tree_label(SnapshotWriter& w, const TreeLabel& label);
[[nodiscard]] TreeLabel load_tree_label(SnapshotReader& r);

/// Forwarding decision at a node holding `at` for a packet addressed
/// `target`: kNoPort means "deliver here" (at.dfs_in == target.dfs_in).
/// Throws std::logic_error if the node is off the root->target path (cannot
/// happen when packets enter at the root).
[[nodiscard]] Port tree_next_port(const TreeNodeTable& at,
                                  const TreeLabel& target);

/// Encoded size of a label in bits, given the graph's name and port spaces.
[[nodiscard]] std::int64_t tree_label_bits(const TreeLabel& label,
                                           std::int64_t node_space,
                                           std::int64_t port_space);

}  // namespace rtr

#endif  // RTR_TREEROUTE_TREE_ROUTER_H
