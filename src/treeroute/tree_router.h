// Fixed-port tree routing (Lemma 14, after Thorup-Zwick [39] and
// Fraigniaud-Gavoille [18]).
//
// Given a shortest-path out-tree rooted at r, the scheme routes a packet from
// r to any node v along the optimal tree path, with
//   * O(1) words stored per tree node (its DFS number and the port of its
//     heavy child), and
//   * an O(log^2 n)-bit address for v.
//
// The construction is the classic heavy-path decomposition: every node keeps
// the port toward its child with the largest subtree ("heavy child").  The
// address of v lists the (node, port) pairs of the *light* edges on the
// root->v path -- at most floor(log2 n) of them, since crossing a light edge
// at least halves the subtree size.  Forwarding at node x: if x is the
// target, deliver; if x appears in the address's light list, take the listed
// port; otherwise take the heavy port.  Packets enter a tree only at its root
// in all of our uses, so no off-path case arises (we still detect and reject
// it defensively).
#ifndef RTR_TREEROUTE_TREE_ROUTER_H
#define RTR_TREEROUTE_TREE_ROUTER_H

#include <vector>

#include "graph/dijkstra.h"
#include "util/types.h"

namespace rtr {

class SnapshotWriter;  // io/snapshot_format.h
class SnapshotReader;
class AuditReport;  // audit/audit.h

/// Per-node state a tree member stores for one tree: O(1) words.
struct TreeNodeTable {
  std::int32_t dfs_in = -1;    // this node's DFS number within the tree
  Port heavy_port = kNoPort;   // port to the heavy child (kNoPort at leaves)
};

/// The routable address of a node within one tree: O(log^2 n) bits.
struct TreeLabel {
  std::int32_t dfs_in = -1;
  /// (dfs number of the light edge's tail, port at that tail), in root->v
  /// order.  At most floor(log2 |tree|) entries.
  std::vector<std::pair<std::int32_t, Port>> light_hops;
};

/// Immutable routing structure for one tree.  Holds every member's
/// TreeNodeTable and can mint labels; per-member state is O(1) words as
/// Lemma 14 requires (labels are computed from the tree, not stored).
class TreeRouter {
 public:
  /// Builds from a shortest-path out-tree; nodes unreachable in the tree
  /// (dist == kInfDist) are not members.
  explicit TreeRouter(const OutTree& tree);

  /// Snapshot path: rehydrates a router saved with save().
  explicit TreeRouter(SnapshotReader& r);
  void save(SnapshotWriter& w) const;

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] bool contains(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < tables_.size() &&
           tables_[static_cast<std::size_t>(v)].dfs_in >= 0;
  }
  [[nodiscard]] NodeId member_count() const { return member_count_; }

  /// The O(1)-word table node v stores.  Requires contains(v).
  [[nodiscard]] const TreeNodeTable& table(NodeId v) const {
    return tables_[static_cast<std::size_t>(v)];
  }

  /// The address of v (root->v light edges).  Requires contains(v).
  [[nodiscard]] TreeLabel label(NodeId v) const;

  /// Members in no particular order.
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }

  /// Auditable: member bookkeeping, acyclic parent pointers reaching the
  /// root, unique DFS numbers, heavy-child/heavy-port consistency, and the
  /// Lemma 14 bound of at most label_slack * floor(log2 |tree|) light hops
  /// on every member's address.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditTestPeer;
  NodeId root_ = kNoNode;
  NodeId member_count_ = 0;
  std::vector<TreeNodeTable> tables_;
  std::vector<NodeId> parent_;      // within-tree parent (for label walks)
  std::vector<Port> parent_port_;   // port at parent toward this node
  std::vector<NodeId> heavy_child_;
  std::vector<NodeId> members_;
};

/// Snapshot encoding of the O(1)-word table and the O(log^2 n)-bit label;
/// shared by every scheme that persists tree-routing state.
void save_tree_node_table(SnapshotWriter& w, const TreeNodeTable& t);
[[nodiscard]] TreeNodeTable load_tree_node_table(SnapshotReader& r);
void save_tree_label(SnapshotWriter& w, const TreeLabel& label);
[[nodiscard]] TreeLabel load_tree_label(SnapshotReader& r);

/// Forwarding decision at a node holding `at` for a packet addressed
/// `target`: kNoPort means "deliver here" (at.dfs_in == target.dfs_in).
/// Throws std::logic_error if the node is off the root->target path (cannot
/// happen when packets enter at the root).
[[nodiscard]] Port tree_next_port(const TreeNodeTable& at,
                                  const TreeLabel& target);

/// Encoded size of a label in bits, given the graph's name and port spaces.
[[nodiscard]] std::int64_t tree_label_bits(const TreeLabel& label,
                                           std::int64_t node_space,
                                           std::int64_t port_space);

}  // namespace rtr

#endif  // RTR_TREEROUTE_TREE_ROUTER_H
