#include "rt/metric.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/dijkstra.h"
#include "graph/scc.h"

namespace rtr {

RoundtripMetric::RoundtripMetric(const Digraph& g)
    : RoundtripMetric(g, all_pairs_shortest_paths(g)) {}

RoundtripMetric::RoundtripMetric(const Digraph& g, DistMatrix apsp)
    : d_(std::move(apsp)) {
  if (d_.size() != g.node_count()) {
    throw std::invalid_argument("RoundtripMetric: matrix size mismatch");
  }
  if (!is_strongly_connected(g)) {
    throw std::invalid_argument(
        "RoundtripMetric: graph must be strongly connected");
  }
}

std::vector<NodeId> RoundtripMetric::init_order(
    NodeId v, const std::vector<NodeName>& names) const {
  std::vector<NodeId> order(static_cast<std::size_t>(node_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const Dist ra = r(v, a), rb = r(v, b);
    if (ra != rb) return ra < rb;
    const Dist da = d(a, v), db = d(b, v);
    if (da != db) return da < db;
    return names[static_cast<std::size_t>(a)] < names[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<NodeId> RoundtripMetric::neighborhood(
    NodeId v, NodeId size, const std::vector<NodeName>& names) const {
  auto order = init_order(v, names);
  order.resize(static_cast<std::size_t>(
      std::min<NodeId>(size, node_count())));
  return order;
}

std::vector<NodeId> RoundtripMetric::ball(NodeId v, Dist radius) const {
  std::vector<NodeId> members;
  for (NodeId w = 0; w < node_count(); ++w) {
    if (r(v, w) <= radius) members.push_back(w);
  }
  return members;
}

Dist RoundtripMetric::rt_radius_from(NodeId v) const {
  Dist mx = 0;
  for (NodeId u = 0; u < node_count(); ++u) mx = std::max(mx, r(v, u));
  return mx;
}

Dist RoundtripMetric::rt_diameter() const {
  Dist mx = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    for (NodeId u = v + 1; u < node_count(); ++u) mx = std::max(mx, r(v, u));
  }
  return mx;
}

std::vector<Dist> induced_roundtrip_from(const Digraph& g,
                                         const Digraph& reversed, NodeId center,
                                         const std::vector<char>& member_mask) {
  OutTree out = dijkstra_out_tree_within(g, center, member_mask);
  // In-distance toward center == out-distance from center in reversed graph.
  OutTree in = dijkstra_out_tree_within(reversed, center, member_mask);
  std::vector<Dist> rt(static_cast<std::size_t>(g.node_count()), kInfDist);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto idx = static_cast<std::size_t>(v);
    if (!member_mask[idx]) continue;
    if (out.dist[idx] >= kInfDist || in.dist[idx] >= kInfDist) continue;
    rt[idx] = out.dist[idx] + in.dist[idx];
  }
  return rt;
}

}  // namespace rtr
