#include "rt/metric.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/dijkstra.h"
#include "graph/scc.h"
#include "util/parallel.h"

namespace rtr {

std::int32_t RoundtripMetric::nearest(
    NodeId v, const std::vector<NodeId>& candidates) const {
  std::int32_t best = -1;
  Dist best_r = kInfDist;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Dist rv = r(v, candidates[i]);
    if (rv < best_r) {
      best_r = rv;
      best = static_cast<std::int32_t>(i);
    }
  }
  return best;
}

void RoundtripMetric::nearest_all(const std::vector<NodeId>& candidates,
                                  int threads,
                                  std::vector<std::int32_t>& nearest_idx,
                                  std::vector<Dist>& nearest_r) const {
  const NodeId n = node_count();
  nearest_idx.assign(static_cast<std::size_t>(n), -1);
  nearest_r.assign(static_cast<std::size_t>(n), kInfDist);
  if (candidates.empty()) return;
  const int workers = resolve_apsp_threads(threads);
  parallel_tickets(n, workers, [&] {
    return [&](std::int64_t ticket) {
      const auto v = static_cast<NodeId>(ticket);
      const auto vz = static_cast<std::size_t>(v);
      const std::int32_t best = nearest(v, candidates);
      nearest_idx[vz] = best;
      nearest_r[vz] = r(v, candidates[static_cast<std::size_t>(best)]);
    };
  });
}

// ---------------------------------------------------- DenseRoundtripMetric --

DenseRoundtripMetric::DenseRoundtripMetric(const Digraph& g)
    : DenseRoundtripMetric(g, all_pairs_shortest_paths(g)) {}

DenseRoundtripMetric::DenseRoundtripMetric(const Digraph& g, DistMatrix apsp)
    : d_(std::move(apsp)) {
  if (d_.size() != g.node_count()) {
    throw std::invalid_argument("RoundtripMetric: matrix size mismatch");
  }
  if (!is_strongly_connected(g)) {
    throw std::invalid_argument(
        "RoundtripMetric: graph must be strongly connected");
  }
}

std::vector<NodeId> DenseRoundtripMetric::init_order(
    NodeId v, std::span<const NodeName> names) const {
  std::vector<NodeId> order(static_cast<std::size_t>(node_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const Dist ra = r(v, a), rb = r(v, b);
    if (ra != rb) return ra < rb;
    const Dist da = d(a, v), db = d(b, v);
    if (da != db) return da < db;
    return names[static_cast<std::size_t>(a)] < names[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<NodeId> DenseRoundtripMetric::neighborhood(
    NodeId v, NodeId size, std::span<const NodeName> names) const {
  auto order = init_order(v, names);
  order.resize(static_cast<std::size_t>(
      std::min<NodeId>(size, node_count())));
  return order;
}

std::vector<NodeId> DenseRoundtripMetric::ball(NodeId v, Dist radius) const {
  std::vector<NodeId> members;
  for (NodeId w = 0; w < node_count(); ++w) {
    if (r(v, w) <= radius) members.push_back(w);
  }
  return members;
}

Dist DenseRoundtripMetric::rt_radius_from(NodeId v) const {
  Dist mx = 0;
  for (NodeId u = 0; u < node_count(); ++u) mx = std::max(mx, r(v, u));
  return mx;
}

Dist DenseRoundtripMetric::rt_diameter() const {
  Dist mx = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    for (NodeId u = v + 1; u < node_count(); ++u) mx = std::max(mx, r(v, u));
  }
  return mx;
}

// --------------------------------------------------- SparseRoundtripMetric --

namespace {

// Bounded-run scratch, thread-local so lazily expanding rows from the
// QueryEngine pool or a parallel scheme build never shares buffers.  The
// dist arrays reset sparsely (touched lists), so reuse across rows, graphs,
// and metrics is free; buffers grow to the largest graph seen per thread.
struct BoundedScratch {
  BoundedDijkstraWorkspace fwd;
  BoundedDijkstraWorkspace rev;
  std::vector<BoundedReach> fwd_out;
  std::vector<BoundedReach> rev_out;
  RoundtripBallWorkspace rt;
  std::vector<RoundtripReach> ball_out;
};

BoundedScratch& bounded_scratch() {
  thread_local BoundedScratch scratch;
  return scratch;
}

// Doubling schedule for open-ended row growth: seed first, then double the
// covered radius, saturating at kInfDist (forces a full row).
Dist next_radius(Dist covered, Dist seed) {
  if (covered < seed) return seed;
  return covered > kInfDist / 2 ? kInfDist : covered * 2;
}

// One both-directions bounded sweep from v: fills scratch.fwd_out/rev_out
// with the nodes settled within `limit` in each direction.  After the call,
// scratch.rev.dist[u] holds the exact d(u, v) for every u in rev_out (and
// kInfDist semantics for the rest of the touched set), valid until the next
// reverse run on this thread.
void bounded_sweep(const Digraph& g, const Digraph& reversed, NodeId v,
                   Dist limit, BoundedScratch& scratch) {
  scratch.fwd_out.clear();
  scratch.rev_out.clear();
  dijkstra_bounded(g, v, limit, scratch.fwd, scratch.fwd_out);
  dijkstra_bounded(reversed, v, limit, scratch.rev, scratch.rev_out);
}

}  // namespace

SparseRoundtripMetric::SparseRoundtripMetric(std::shared_ptr<const Digraph> g)
    : graph_(std::move(g)),
      reversed_(graph_->reversed()),
      // A few hops' worth of the heaviest edge: small enough that a seed row
      // stays tiny, large enough that the first expansion usually catches the
      // immediate roundtrip neighbours (min r to a neighbour is >= 2 weights).
      seed_radius_(std::max<Dist>(1, 4 * graph_->max_weight())),
      rows_(static_cast<std::size_t>(graph_->node_count())),
      locks_(static_cast<std::size_t>(graph_->node_count())) {
  if (!is_strongly_connected(*graph_)) {
    throw std::invalid_argument(
        "RoundtripMetric: graph must be strongly connected");
  }
}

void SparseRoundtripMetric::rebuild_row_from_ball(Row& row,
                                                  Dist covered) const {
  const BoundedScratch& scratch = bounded_scratch();
  row.entries.clear();
  row.entries.reserve(scratch.ball_out.size());
  for (const RoundtripReach& m : scratch.ball_out) {
    row.entries.push_back(Entry{m.node, m.d_out + m.d_in, m.d_out, m.d_in});
  }
  // (r, d_in, node id): the Init_v order up to the per-call name tie-break,
  // which queries apply themselves -- one metric may serve several
  // NameAssignments (hashed64 builds its own).
  std::sort(row.entries.begin(), row.entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.r != b.r) return a.r < b.r;
              if (a.d_in != b.d_in) return a.d_in < b.d_in;
              return a.node < b.node;
            });
  row.covered = covered;
  row.full = row.entries.size() == static_cast<std::size_t>(
                                       rows_.size());
  row.by_id.resize(row.entries.size());
  std::iota(row.by_id.begin(), row.by_id.end(), 0);
  std::sort(row.by_id.begin(), row.by_id.end(),
            [&](std::int32_t a, std::int32_t b) {
              return row.entries[static_cast<std::size_t>(a)].node <
                     row.entries[static_cast<std::size_t>(b)].node;
            });
}

void SparseRoundtripMetric::expand_to_radius(NodeId v, Row& row,
                                             Dist radius) const {
  if (row.full || row.covered >= radius) return;
  BoundedScratch& scratch = bounded_scratch();
  scratch.ball_out.clear();
  roundtrip_ball_bounded(*graph_, reversed_, v, radius, scratch.rt,
                         scratch.ball_out);
  rebuild_row_from_ball(row, radius);
}

void SparseRoundtripMetric::expand_to_count(NodeId v, Row& row,
                                            NodeId want) const {
  const NodeId n = graph_->node_count();
  want = std::min<NodeId>(want, n);
  // Every row entry is a certified ball member (r <= covered), so the row's
  // size IS its complete count.
  if (row.full || static_cast<NodeId>(row.entries.size()) >= want) return;
  BoundedScratch& scratch = bounded_scratch();
  // Probes are capped at the overshoot allowance: a budget past the critical
  // radius answers "more than cap" (-1) after O(cap) confirmations instead
  // of walking the whole oversize ball (which on expander-like graphs is
  // most of the graph one doubling past the request).
  const std::int64_t cap = static_cast<std::int64_t>(kCountSlack) * want;
  // Radius whose *complete* ball scratch currently holds, or -1.
  Dist held = -1;
  const auto probe = [&](Dist budget, std::int64_t probe_cap) {
    scratch.ball_out.clear();
    const bool complete = roundtrip_ball_bounded(
        *graph_, reversed_, v, budget, scratch.rt, scratch.ball_out,
        probe_cap);
    held = complete ? budget : -1;
    return complete ? static_cast<std::int64_t>(scratch.ball_out.size())
                    : std::int64_t{-1};
  };
  // Exponential phase: grow the budget until the ball holds enough members
  // (strong connectivity guarantees all n appear eventually) or overshoots
  // the cap.  When prepare_neighborhoods has published a pilot radius for a
  // request this large, the first probe past it lands there and further
  // growth is a gentle 1.25x: critical radii concentrate sharply across
  // nodes, so most rows resolve in one near-critical probe and the doubling
  // ladder's expensive overshoot budgets (where one-directional balls
  // approach the whole graph on expander-like families) are never visited.
  const Dist hint = hint_radius_.load(std::memory_order_relaxed);
  const NodeId hint_want = hint_want_.load(std::memory_order_relaxed);
  const bool hinted = hint > 0 && hint_want > 0 && want >= hint_want;
  const auto step = [&](Dist cur) {
    if (!hinted) return next_radius(cur, seed_radius_);
    if (cur < hint) return hint;
    return cur > kInfDist / 2 ? kInfDist : cur + std::max<Dist>(1, cur / 4);
  };
  Dist lo = std::max<Dist>(row.covered, 0);  // member count at lo is < want
  Dist hi = step(lo);
  std::int64_t cnt_hi = probe(hi, cap);  // -1 means more than cap
  while (cnt_hi >= 0 && cnt_hi < want) {
    lo = hi;
    hi = step(hi);
    cnt_hi = probe(hi, cap);
  }
  // Refinement phase: binary-search an over-cap budget down until the
  // committed row is within the allowance of the request.  If the window
  // collapses while still over cap, the member count jumps past the cap at a
  // single radius and the minimal sufficient budget hi must be committed
  // with its full ball.
  while (cnt_hi < 0 && hi - lo > 1) {
    const Dist mid = lo + (hi - lo) / 2;
    const std::int64_t cnt = probe(mid, cap);
    if (cnt >= 0 && cnt < want) {
      lo = mid;
    } else {
      hi = mid;
      cnt_hi = cnt;
    }
  }
  if (held != hi) probe(hi, -1);  // scratch must hold the committed ball
  rebuild_row_from_ball(row, hi);
}

const SparseRoundtripMetric::Entry* SparseRoundtripMetric::find_entry(
    const Row& row, NodeId u) const {
  const auto it = std::lower_bound(
      row.by_id.begin(), row.by_id.end(), u,
      [&](std::int32_t idx, NodeId val) {
        return row.entries[static_cast<std::size_t>(idx)].node < val;
      });
  if (it == row.by_id.end()) return nullptr;
  const Entry& e = row.entries[static_cast<std::size_t>(*it)];
  return e.node == u ? &e : nullptr;
}

SparseRoundtripMetric::Entry SparseRoundtripMetric::entry_for_pair(
    NodeId u, NodeId v) const {
  const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(u)]);
  Row& row = rows_[static_cast<std::size_t>(u)];
  for (;;) {
    if (const Entry* e = find_entry(row, v)) return *e;
    if (row.full) {
      // Unreachable pairs cannot occur: the constructor verified strong
      // connectivity, so a full row holds every node.
      throw std::logic_error(
          "SparseRoundtripMetric: node missing from a full row");
    }
    expand_to_radius(u, row, next_radius(row.covered, seed_radius_));
  }
}

Dist SparseRoundtripMetric::d(NodeId u, NodeId v) const {
  return entry_for_pair(u, v).d_out;
}

Dist SparseRoundtripMetric::r(NodeId u, NodeId v) const {
  return entry_for_pair(u, v).r;
}

std::vector<NodeId> SparseRoundtripMetric::init_order(
    NodeId v, std::span<const NodeName> names) const {
  return neighborhood(v, node_count(), names);
}

std::vector<NodeId> SparseRoundtripMetric::neighborhood(
    NodeId v, NodeId size, std::span<const NodeName> names) const {
  const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(v)]);
  Row& row = rows_[static_cast<std::size_t>(v)];
  expand_to_count(v, row, size);
  // Every entry is complete (r <= covered) and the set is downward-closed
  // under the (r, d_in) major keys, so refining its order with the per-call
  // name tie-break and truncating reproduces the dense Init_v prefix exactly.
  const std::size_t complete = row.entries.size();
  std::vector<std::int32_t> idx(complete);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
    const Entry& ea = row.entries[static_cast<std::size_t>(a)];
    const Entry& eb = row.entries[static_cast<std::size_t>(b)];
    if (ea.r != eb.r) return ea.r < eb.r;
    if (ea.d_in != eb.d_in) return ea.d_in < eb.d_in;
    return names[static_cast<std::size_t>(ea.node)] <
           names[static_cast<std::size_t>(eb.node)];
  });
  const auto take = std::min<std::size_t>(
      static_cast<std::size_t>(std::max<NodeId>(size, 0)), idx.size());
  std::vector<NodeId> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(row.entries[static_cast<std::size_t>(idx[i])].node);
  }
  return out;
}

std::vector<NodeId> SparseRoundtripMetric::ball(NodeId v, Dist radius) const {
  const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(v)]);
  Row& row = rows_[static_cast<std::size_t>(v)];
  expand_to_radius(v, row, std::max<Dist>(radius, 0));
  std::vector<NodeId> members;
  for (const Entry& e : row.entries) {
    if (e.r <= radius) members.push_back(e.node);
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::int32_t SparseRoundtripMetric::nearest(
    NodeId v, const std::vector<NodeId>& candidates) const {
  if (candidates.empty()) return -1;
  const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(v)]);
  Row& row = rows_[static_cast<std::size_t>(v)];
  for (;;) {
    std::int32_t best = -1;
    Dist best_r = kInfDist;
    // Every row entry has r <= covered, so any present candidate beats all
    // absent ones (their r exceeds covered) and the scan is decisive as
    // soon as one candidate appears.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Entry* e = find_entry(row, candidates[i]);
      if (e == nullptr) continue;
      if (e->r < best_r) {
        best_r = e->r;
        best = static_cast<std::int32_t>(i);
      }
    }
    if (best != -1 || row.full) return best;
    expand_to_radius(v, row, next_radius(row.covered, seed_radius_));
  }
}

void SparseRoundtripMetric::nearest_all(const std::vector<NodeId>& candidates,
                                        int threads,
                                        std::vector<std::int32_t>& nearest_idx,
                                        std::vector<Dist>& nearest_r) const {
  const NodeId n = node_count();
  nearest_idx.assign(static_cast<std::size_t>(n), -1);
  nearest_r.assign(static_cast<std::size_t>(n), kInfDist);
  if (candidates.empty()) return;
  const int workers = resolve_apsp_threads(threads);
  // |candidates| global sweeps instead of n row expansions: per-node rows
  // can only certify a nearest center by covering out to it, which on
  // expander-like graphs means near-full rows and O(n^2) resident entries.
  // Two full Dijkstras per candidate give every node's r(v, c) at once;
  // chunking bounds the resident distance rows to 2 * kSweepChunk * n.
  constexpr std::size_t kSweepChunk = 32;
  std::vector<std::vector<Dist>> fwd(kSweepChunk);
  std::vector<std::vector<Dist>> rev(kSweepChunk);
  for (std::size_t base = 0; base < candidates.size(); base += kSweepChunk) {
    const std::size_t chunk = std::min(kSweepChunk, candidates.size() - base);
    parallel_tickets(static_cast<std::int64_t>(chunk), workers, [&] {
      return [&, ws = DijkstraWorkspace{}](std::int64_t k) mutable {
        const auto kz = static_cast<std::size_t>(k);
        const NodeId c = candidates[base + kz];
        fwd[kz].resize(static_cast<std::size_t>(n));
        rev[kz].resize(static_cast<std::size_t>(n));
        dijkstra_distances_into(*graph_, c, ws, fwd[kz]);    // d(c, v)
        dijkstra_distances_into(reversed_, c, ws, rev[kz]);  // d(v, c)
      };
    });
    // Serial merge in ascending candidate order with a strict < reproduces
    // nearest()'s earliest-list-position tie-break exactly.
    for (std::size_t k = 0; k < chunk; ++k) {
      const auto idx = static_cast<std::int32_t>(base + k);
      const auto& df = fwd[k];
      const auto& dr = rev[k];
      for (NodeId v = 0; v < n; ++v) {
        const auto vz = static_cast<std::size_t>(v);
        const Dist rv = df[vz] + dr[vz];  // r(v, c) = d(v,c) + d(c,v)
        if (rv < nearest_r[vz]) {
          nearest_r[vz] = rv;
          nearest_idx[vz] = idx;
        }
      }
    }
  }
}

void SparseRoundtripMetric::prepare_neighborhoods(NodeId want,
                                                  int threads) const {
  (void)threads;  // pilots run serially: kHintPilots rows, each one ladder
  const NodeId n = node_count();
  want = std::min<NodeId>(want, n);
  if (want <= 0 || want >= n) return;  // full rows have no critical radius
  // Deterministic evenly spaced pilots: expand each through the regular
  // (unhinted) ladder and publish the median committed radius.  A pilot row
  // holding >= want entries is already past its critical radius, so every
  // sample is an upper bound and the median resists fat outlier rows left by
  // earlier pair queries.  Row contents stay schedule-independent, so the
  // hint only redirects probe budgets -- answers are identical with or
  // without it.
  std::vector<Dist> radii;
  radii.reserve(static_cast<std::size_t>(kHintPilots));
  for (NodeId i = 0; i < kHintPilots && i < n; ++i) {
    const NodeId v = static_cast<NodeId>(
        (static_cast<std::int64_t>(i) * n) / kHintPilots);
    const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(v)]);
    Row& row = rows_[static_cast<std::size_t>(v)];
    expand_to_count(v, row, want);
    radii.push_back(row.covered);
  }
  if (radii.empty()) return;
  std::sort(radii.begin(), radii.end());
  hint_radius_.store(radii[radii.size() / 2], std::memory_order_relaxed);
  hint_want_.store(want, std::memory_order_relaxed);
}

Dist SparseRoundtripMetric::rt_radius_from(NodeId v) const {
  const std::lock_guard<std::mutex> lock(locks_[static_cast<std::size_t>(v)]);
  Row& row = rows_[static_cast<std::size_t>(v)];
  expand_to_radius(v, row, kInfDist);
  Dist mx = 0;
  for (const Entry& e : row.entries) mx = std::max(mx, e.r);
  return mx;
}

Dist SparseRoundtripMetric::rt_diameter() const {
  // Streamed, not cached: one full both-directions sweep per node keeps the
  // O(n^2) distances out of memory (this is the one whole-metric scan the
  // cover hierarchy needs).
  const NodeId n = graph_->node_count();
  BoundedScratch& scratch = bounded_scratch();
  Dist mx = 0;
  for (NodeId v = 0; v < n; ++v) {
    bounded_sweep(*graph_, reversed_, v, kInfDist, scratch);
    for (const BoundedReach& f : scratch.fwd_out) {
      const Dist d_in = scratch.rev.dist[static_cast<std::size_t>(f.node)];
      if (d_in < kInfDist) mx = std::max(mx, f.dist + d_in);
    }
  }
  return mx;
}

std::int64_t SparseRoundtripMetric::cached_entries() const {
  std::int64_t total = 0;
  for (std::size_t v = 0; v < rows_.size(); ++v) {
    const std::lock_guard<std::mutex> lock(locks_[v]);
    total += static_cast<std::int64_t>(rows_[v].entries.size());
  }
  return total;
}

// ------------------------------------------------------------- MetricMode --

MetricMode parse_metric_mode(const std::string& text) {
  if (text == "auto") return MetricMode::kAuto;
  if (text == "dense") return MetricMode::kDense;
  if (text == "sparse") return MetricMode::kSparse;
  throw std::invalid_argument(
      "metric mode must be auto, dense, or sparse; got '" + text + "'");
}

const char* metric_mode_name(MetricMode mode) {
  switch (mode) {
    case MetricMode::kAuto: return "auto";
    case MetricMode::kDense: return "dense";
    case MetricMode::kSparse: return "sparse";
  }
  return "auto";
}

std::shared_ptr<const RoundtripMetric> make_roundtrip_metric(
    std::shared_ptr<const Digraph> graph, MetricMode mode, int threads) {
  if (graph == nullptr) {
    throw std::invalid_argument("make_roundtrip_metric: null graph");
  }
  const bool dense =
      mode == MetricMode::kDense ||
      (mode == MetricMode::kAuto &&
       graph->node_count() <= kDenseMetricAutoThreshold);
  if (dense) {
    return std::make_shared<const DenseRoundtripMetric>(
        *graph, all_pairs_shortest_paths(*graph, threads));
  }
  return std::make_shared<const SparseRoundtripMetric>(std::move(graph));
}

// -------------------------------------------------- induced roundtrip dist --

std::vector<Dist> induced_roundtrip_from(const Digraph& g,
                                         const Digraph& reversed, NodeId center,
                                         const std::vector<char>& member_mask) {
  OutTree out = dijkstra_out_tree_within(g, center, member_mask);
  // In-distance toward center == out-distance from center in reversed graph.
  OutTree in = dijkstra_out_tree_within(reversed, center, member_mask);
  std::vector<Dist> rt(static_cast<std::size_t>(g.node_count()), kInfDist);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto idx = static_cast<std::size_t>(v);
    if (!member_mask[idx]) continue;
    if (out.dist[idx] >= kInfDist || in.dist[idx] >= kInfDist) continue;
    rt[idx] = out.dist[idx] + in.dist[idx];
  }
  return rt;
}

}  // namespace rtr
