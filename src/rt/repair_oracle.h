// Dirtiness oracles for incremental epoch repair: given the edge diff
// between two epochs (graph/churn_delta.h), decide which radius-bounded
// substructures of the OLD scheme provably survive into the NEW graph.
//
// Both oracles rest on the same two facts:
//
//   1. Roundtrip balls are closed under shortest-path prefixes (rtz/balls.h):
//      every node on a shortest tour realizing a member's distance is itself
//      a member.  So if every changed-edge endpoint lies roundtrip-strictly
//      beyond a ball's radius in BOTH the old and the new metric, no old
//      member's tour and no would-be new member's tour can traverse a
//      changed edge -- the member set, its distances, and the masked
//      shortest-path trees inside it are bitwise unaffected.
//
//   2. A strictly slack edge -- min-side weight w with
//      w + d(head, dest) > d(tail, dest) in a metric -- is on no shortest
//      path to dest in that metric, and (because Dijkstra only replaces a
//      tentative distance on STRICT improvement, and the frozen CSR
//      preserves surviving edges' relaxation order across churn) its
//      presence or absence cannot perturb the computed in-tree, parents,
//      or ports.  If every changed edge is strictly slack toward dest on
//      its own side(s), the old in-tree to dest is the new in-tree.
//
// Cost: the ball oracle runs TWO budget-bounded multi-source Dijkstras per
// graph (forward and reversed, seeded with the whole touched set W at
// distance 0) -- a constant number of searches regardless of |W|, each
// pruned at the largest ball radius.  The in-tree oracle stays exact and
// costs one full SSSP per touched endpoint per graph.
#ifndef RTR_RT_REPAIR_ORACLE_H
#define RTR_RT_REPAIR_ORACLE_H

#include <span>
#include <vector>

#include "graph/churn_delta.h"
#include "graph/digraph.h"
#include "util/types.h"

namespace rtr {

/// Per-node LOWER BOUND on the minimum roundtrip distance to the churned
/// region, complete up to `budget`.  For each graph the bound decomposes
/// the roundtrip per direction: rt_min[v] <= min over touched endpoints w
/// of min(r_old(v, w), r_new(v, w)), with equality whenever one endpoint
/// realizes both directional minima (the common local case).  A lower
/// bound keeps the oracle SOUND -- rt_min[v] > radius still proves every
/// touched endpoint roundtrip-strictly outside the ball -- it can only
/// classify extra nodes dirty, costing recompute, never correctness.
/// Entries whose bound exceeds budget hold kInfDist.
struct BallRepairOracle {
  std::vector<Dist> rt_min;
  Dist budget = 0;

  /// True when the radius-`radius` roundtrip ball of v (radius <= budget)
  /// might see a changed edge -- conservatively, when any changed endpoint
  /// is within roundtrip distance `radius` of v in either metric.
  [[nodiscard]] bool dirty(NodeId v, Dist radius) const {
    return rt_min[static_cast<std::size_t>(v)] <= radius;
  }
};

/// Runs the two budget-bounded multi-source Dijkstras (forward + reversed,
/// all touched endpoints as sources) on both graphs.  `budget` must be at
/// least the largest ball radius the caller will query (queries beyond it
/// would be unsound).
[[nodiscard]] BallRepairOracle build_ball_repair_oracle(
    const Digraph& old_graph, const Digraph& new_graph,
    const ChurnDelta& delta, Dist budget);

/// Certifies a weight-only delta as globally distance-preserving: true when
/// every modified edge has a strictly shorter tail->head detour in the new
/// graph at BOTH its weights (d_new(tail, head) < min(old_w, new_w), found
/// by a search bounded at min - 1 so the edge never counts as its own
/// detour).  That proves each changed edge lies on no shortest path in
/// either metric, hence d_old == d_new everywhere and -- by the
/// strict-improvement Dijkstra argument, since the CSR is unchanged for a
/// weight-only delta -- every full-graph shortest-path tree, port, and DFS
/// numbering is bitwise identical across the two epochs.  Only masked
/// (ball-restricted) structures that contain BOTH endpoints can still
/// differ: the mask may exclude the detour.  Cost: one tiny bounded search
/// per changed edge -- O(affected region), independent of n.  Requires
/// delta.weight_only(); returns false otherwise.
[[nodiscard]] bool delta_is_strictly_slack(const Digraph& new_graph,
                                           const ChurnDelta& delta);

/// The masked counterpart of the detour test: true when a tail->head path
/// strictly shorter than `limit` exists inside the subgraph induced by
/// `members` (sorted ascending).  When it does, the edge is strictly slack
/// for every shortest-path tree rooted inside the mask, in both directions
/// -- d_mask(v,tail) + w > d_mask(v,head) and w + d_mask(head,v) >
/// d_mask(tail,v) follow from d_mask(tail,head) < limit <= w -- so a
/// weight-only change to it leaves the masked double trees bitwise
/// unchanged.  Cost: a Dijkstra over |members| nodes bounded at limit - 1.
[[nodiscard]] bool masked_detour_shorter(const Digraph& g,
                                         std::span<const NodeId> members,
                                         NodeId tail, NodeId head,
                                         Weight limit);

/// Per-destination dirtiness for full shortest-path in-trees: dirty[dest]
/// is false only when every changed edge is strictly slack toward dest on
/// its own side(s) (removed edges in the old metric, added edges in the
/// new, modified edges in both), which proves d_old(., dest) ==
/// d_new(., dest) and the in-trees identical including next-hop ports.
/// Costs one full SSSP per touched endpoint per graph.
[[nodiscard]] std::vector<char> dirty_in_tree_destinations(
    const Digraph& old_graph, const Digraph& new_graph,
    const ChurnDelta& delta);

}  // namespace rtr

#endif  // RTR_RT_REPAIR_ORACLE_H
