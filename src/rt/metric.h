// The roundtrip distance metric and the Init_v total order (Sections 1.1, 2).
//
//   r(u,v) = d(u,v) + d(v,u)   -- the minimum cost of a directed tour from u
//                                 through v back to u; symmetric, and it
//                                 satisfies the triangle inequality.
//
// For each node v, the paper fixes the total order Init_v over V:
//   u comes before w  iff  r(v,u) < r(v,w),
//                     or   r equal and d(u,v) < d(w,v),
//                     or   both equal and name(u) < name(w).
// (d(u,v) is the distance *toward* v; ties end at the adversarial name, which
// keeps the order topology-independent-friendly and total.)
//
// Neighborhoods N_i(u) are prefixes of Init_u: the first n^{i/k} nodes
// (Section 3.1); the stretch-6 scheme's N(u) is the k=2, i=1 case (first
// ceil(sqrt(n)) nodes).  Init_v starts with v itself since r(v,v) = 0.
#ifndef RTR_RT_METRIC_H
#define RTR_RT_METRIC_H

#include <vector>

#include "graph/apsp.h"
#include "graph/digraph.h"

namespace rtr {

/// Roundtrip metric over a strongly connected digraph, backed by an APSP
/// matrix.  Also exposes the cover-construction vocabulary of Section 4:
/// balls, radii, diameter.
class RoundtripMetric {
 public:
  /// Computes APSP internally.  Throws if g is not strongly connected.
  explicit RoundtripMetric(const Digraph& g);

  /// Takes a precomputed APSP matrix (must match g).
  RoundtripMetric(const Digraph& g, DistMatrix apsp);

  [[nodiscard]] NodeId node_count() const { return d_.size(); }

  /// One-way distance d(u,v).
  [[nodiscard]] Dist d(NodeId u, NodeId v) const { return d_.at(u, v); }

  /// Roundtrip distance r(u,v) = d(u,v) + d(v,u).
  [[nodiscard]] Dist r(NodeId u, NodeId v) const {
    return d_.at(u, v) + d_.at(v, u);
  }

  /// The full Init_v order: a permutation of V sorted by (r(v,u), d(u,v),
  /// name(u)).  names[x] is the TINN name of internal node x.
  [[nodiscard]] std::vector<NodeId> init_order(
      NodeId v, const std::vector<NodeName>& names) const;

  /// First `size` nodes of Init_v (the neighborhood ball N(v) / N_i(v)).
  [[nodiscard]] std::vector<NodeId> neighborhood(
      NodeId v, NodeId size, const std::vector<NodeName>& names) const;

  /// Closed roundtrip ball N-hat^d(v) = { w : r(v,w) <= d } (Section 4).
  [[nodiscard]] std::vector<NodeId> ball(NodeId v, Dist radius) const;

  /// max_u r(v,u).
  [[nodiscard]] Dist rt_radius_from(NodeId v) const;

  /// RTDiam(G) = max over pairs of r(u,v).
  [[nodiscard]] Dist rt_diameter() const;

  [[nodiscard]] const DistMatrix& distances() const { return d_; }

 private:
  DistMatrix d_;
};

/// Induced roundtrip distances within a member set: r restricted to paths
/// whose every node lies in the member mask.  Used by Section 4's clusters,
/// whose radii are measured in the induced subgraph.  Returns the induced
/// roundtrip distance center<->v for every member (kInfDist if not strongly
/// connected within the mask).
[[nodiscard]] std::vector<Dist> induced_roundtrip_from(
    const Digraph& g, const Digraph& reversed, NodeId center,
    const std::vector<char>& member_mask);

}  // namespace rtr

#endif  // RTR_RT_METRIC_H
