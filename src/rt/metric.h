// The roundtrip distance metric and the Init_v total order (Sections 1.1, 2).
//
//   r(u,v) = d(u,v) + d(v,u)   -- the minimum cost of a directed tour from u
//                                 through v back to u; symmetric, and it
//                                 satisfies the triangle inequality.
//
// For each node v, the paper fixes the total order Init_v over V:
//   u comes before w  iff  r(v,u) < r(v,w),
//                     or   r equal and d(u,v) < d(w,v),
//                     or   both equal and name(u) < name(w).
// (d(u,v) is the distance *toward* v; ties end at the adversarial name, which
// keeps the order topology-independent-friendly and total.)
//
// Neighborhoods N_i(u) are prefixes of Init_u: the first n^{i/k} nodes
// (Section 3.1); the stretch-6 scheme's N(u) is the k=2, i=1 case (first
// ceil(sqrt(n)) nodes).  Init_v starts with v itself since r(v,v) = 0.
//
// Two interchangeable backends implement the metric:
//
//   * DenseRoundtripMetric  -- the full APSP matrix; O(1) d/r lookups, O(n^2)
//     memory.  Right up to a few thousand nodes and for query-heavy serving.
//   * SparseRoundtripMetric -- lazy per-node rows fed by *bounded* Dijkstra
//     (forward on g plus forward on reversed(g), both stopped at a radius).
//     A row covering radius R holds exactly the nodes with r(v,u) <= R, so
//     balls and Init prefixes are served from O(|row|) state and memory grows
//     with what the schemes actually touch -- O~(n sqrt n) for the paper's
//     constructions -- instead of O(n^2).  Rows double their radius on demand
//     and results are identical to the dense backend by construction
//     (pinned by the differential suite in tests/sparse_metric_test.cpp).
#ifndef RTR_RT_METRIC_H
#define RTR_RT_METRIC_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <span>
#include <vector>

#include "graph/apsp.h"
#include "graph/digraph.h"

namespace rtr {

/// Roundtrip metric over a strongly connected digraph.  Also exposes the
/// cover-construction vocabulary of Section 4: balls, radii, diameter.
/// Implementations must be safe to query concurrently from many threads
/// (the QueryEngine pool and the parallel scheme builders do exactly that).
class RoundtripMetric {
 public:
  virtual ~RoundtripMetric() = default;

  [[nodiscard]] virtual NodeId node_count() const = 0;

  /// One-way distance d(u,v).
  [[nodiscard]] virtual Dist d(NodeId u, NodeId v) const = 0;

  /// Roundtrip distance r(u,v) = d(u,v) + d(v,u).
  [[nodiscard]] virtual Dist r(NodeId u, NodeId v) const = 0;

  /// The full Init_v order: a permutation of V sorted by (r(v,u), d(u,v),
  /// name(u)).  names[x] is the TINN name of internal node x.
  [[nodiscard]] virtual std::vector<NodeId> init_order(
      NodeId v, std::span<const NodeName> names) const = 0;

  /// First `size` nodes of Init_v (the neighborhood ball N(v) / N_i(v)).
  [[nodiscard]] virtual std::vector<NodeId> neighborhood(
      NodeId v, NodeId size, std::span<const NodeName> names) const = 0;

  /// Closed roundtrip ball N-hat^d(v) = { w : r(v,w) <= d } (Section 4),
  /// ascending by node id.
  [[nodiscard]] virtual std::vector<NodeId> ball(NodeId v, Dist radius) const = 0;

  /// Index into `candidates` of the nearest candidate by roundtrip distance
  /// from v; ties break toward the earlier list position.  -1 only when
  /// `candidates` is empty.  Exactly the scan the Thorup-Zwick center step
  /// performs, exposed here so the sparse backend can answer it from one row
  /// expansion instead of |candidates| full r() calls.
  [[nodiscard]] virtual std::int32_t nearest(
      NodeId v, const std::vector<NodeId>& candidates) const;

  /// nearest() for every node at once: nearest_idx[v] / nearest_r[v] receive
  /// the winning candidate index and its roundtrip distance from v (-1 /
  /// kInfDist only when `candidates` is empty).  The base implementation
  /// loops nearest(); the sparse backend overrides it with |candidates|
  /// global sweeps instead of n row expansions -- the one query in the
  /// Thorup-Zwick center step whose answer genuinely needs distances to ALL
  /// candidates, which per-node rows can only certify by growing near-full.
  virtual void nearest_all(const std::vector<NodeId>& candidates, int threads,
                           std::vector<std::int32_t>& nearest_idx,
                           std::vector<Dist>& nearest_r) const;

  /// Hint that `neighborhood(v, want, ...)` is about to be asked for every
  /// node.  Answers are identical with or without the call; backends may use
  /// it to amortize work.  The sparse backend measures the critical q-NN
  /// radius on a deterministic pilot sample and starts each row's budget
  /// search there, instead of walking a doubling ladder whose overshoot
  /// probes explore near-whole-graph one-directional balls on expander-like
  /// families.  Base implementation is a no-op.
  virtual void prepare_neighborhoods(NodeId want, int threads) const {
    (void)want;
    (void)threads;
  }

  /// max_u r(v,u).
  [[nodiscard]] virtual Dist rt_radius_from(NodeId v) const = 0;

  /// RTDiam(G) = max over pairs of r(u,v).
  [[nodiscard]] virtual Dist rt_diameter() const = 0;
};

/// Dense backend: the full APSP matrix.
class DenseRoundtripMetric final : public RoundtripMetric {
 public:
  /// Computes APSP internally.  Throws if g is not strongly connected.
  explicit DenseRoundtripMetric(const Digraph& g);

  /// Takes a precomputed APSP matrix (must match g).
  DenseRoundtripMetric(const Digraph& g, DistMatrix apsp);

  [[nodiscard]] NodeId node_count() const override { return d_.size(); }
  [[nodiscard]] Dist d(NodeId u, NodeId v) const override { return d_.at(u, v); }
  [[nodiscard]] Dist r(NodeId u, NodeId v) const override {
    return d_.at(u, v) + d_.at(v, u);
  }
  [[nodiscard]] std::vector<NodeId> init_order(
      NodeId v, std::span<const NodeName> names) const override;
  [[nodiscard]] std::vector<NodeId> neighborhood(
      NodeId v, NodeId size, std::span<const NodeName> names) const override;
  [[nodiscard]] std::vector<NodeId> ball(NodeId v, Dist radius) const override;
  [[nodiscard]] Dist rt_radius_from(NodeId v) const override;
  [[nodiscard]] Dist rt_diameter() const override;

  [[nodiscard]] const DistMatrix& distances() const { return d_; }

 private:
  DistMatrix d_;
};

/// Sparse backend: lazy per-node rows fed by the bidirectional roundtrip-ball
/// search (roundtrip_ball_bounded).  A row for v is complete up to its covered
/// radius R -- it lists every u with r(v,u) <= R, each with exact d(v,u) and
/// d(u,v) -- and grows by doubling R (recomputing from scratch, ~2x the final
/// cost) whenever a query needs more.  The budget search is load-bearing for
/// the memory bound: the row holds exactly the roundtrip-ball members, never
/// the near-n one-directional balls that a pair of radius-R Dijkstras would
/// certify with on expander-like graphs, so resident entries track O~(ball)
/// and total memory stays O~(n sqrt n) for the paper's constructions.
/// Count-driven requests (neighborhoods) narrow the probe radius by binary
/// search, so committed rows overshoot the request by a bounded factor
/// instead of a radius-doubling jump.  Rows are guarded by per-node mutexes,
/// so concurrent queries are safe; answers never depend on the expansion
/// history, so any build schedule (serial, parallel, any thread count)
/// observes identical results.
class SparseRoundtripMetric final : public RoundtripMetric {
 public:
  /// Keeps shared ownership of g and materializes its reversal once.  Throws
  /// if g is not strongly connected.
  explicit SparseRoundtripMetric(std::shared_ptr<const Digraph> g);

  [[nodiscard]] NodeId node_count() const override {
    return graph_->node_count();
  }
  [[nodiscard]] Dist d(NodeId u, NodeId v) const override;
  [[nodiscard]] Dist r(NodeId u, NodeId v) const override;
  [[nodiscard]] std::vector<NodeId> init_order(
      NodeId v, std::span<const NodeName> names) const override;
  [[nodiscard]] std::vector<NodeId> neighborhood(
      NodeId v, NodeId size, std::span<const NodeName> names) const override;
  [[nodiscard]] std::vector<NodeId> ball(NodeId v, Dist radius) const override;
  [[nodiscard]] std::int32_t nearest(
      NodeId v, const std::vector<NodeId>& candidates) const override;
  void nearest_all(const std::vector<NodeId>& candidates, int threads,
                   std::vector<std::int32_t>& nearest_idx,
                   std::vector<Dist>& nearest_r) const override;
  void prepare_neighborhoods(NodeId want, int threads) const override;
  [[nodiscard]] Dist rt_radius_from(NodeId v) const override;
  [[nodiscard]] Dist rt_diameter() const override;

  /// Resident entry count across all cached rows (memory diagnostics).
  [[nodiscard]] std::int64_t cached_entries() const;

 private:
  struct Entry {
    NodeId node = kNoNode;
    Dist r = kInfDist;
    Dist d_out = kInfDist;  // d(v, node)
    Dist d_in = kInfDist;   // d(node, v)
  };
  struct Row {
    Dist covered = -1;  // complete for every u with r(v,u) <= covered
    bool full = false;  // all n nodes present (covered is then RTRadius(v))
    std::vector<Entry> entries;       // sorted by (r, d_in, node)
    std::vector<std::int32_t> by_id;  // entry indices sorted by node id
  };

  /// Grows row v until covered >= radius (kInfDist forces a full row) with
  /// one roundtrip-budget search; the rebuilt row holds exactly the ball
  /// members, so resident memory tracks ball sizes, not the one-directional
  /// balls the exploration transits.  Caller must hold locks_[v].
  void expand_to_radius(NodeId v, Row& row, Dist radius) const;
  /// Grows row v until it holds >= want complete entries (capped at full):
  /// doubles the probe radius until enough members appear, then narrows by
  /// binary search while the member count overshoots kCountSlack * want, so
  /// the committed row stays near the request even on expander-like graphs
  /// where ball sizes jump sharply with radius.  Caller must hold locks_[v].
  void expand_to_count(NodeId v, Row& row, NodeId want) const;
  /// Rebuilds row entries/by_id from the thread-local ball scratch
  /// (roundtrip_ball_bounded output) and stamps the covered radius.
  void rebuild_row_from_ball(Row& row, Dist covered) const;
  [[nodiscard]] const Entry* find_entry(const Row& row, NodeId u) const;
  /// Ensures row u contains node v's entry; expands as needed.
  [[nodiscard]] Entry entry_for_pair(NodeId u, NodeId v) const;

  /// Committed rows may overshoot a count request by at most this factor.
  static constexpr NodeId kCountSlack = 4;
  /// Pilot sample size for prepare_neighborhoods.
  static constexpr NodeId kHintPilots = 16;

  std::shared_ptr<const Digraph> graph_;
  Digraph reversed_;
  Dist seed_radius_;  // first expansion radius guess
  /// Median committed radius of the prepare_neighborhoods pilot rows (-1
  /// until prepared) and the count it was measured for.  Read relaxed inside
  /// expand_to_count: any stale or torn view only changes which budgets get
  /// probed, never what a committed row contains.
  mutable std::atomic<Dist> hint_radius_{-1};
  mutable std::atomic<NodeId> hint_want_{0};
  mutable std::vector<Row> rows_;
  mutable std::vector<std::mutex> locks_;
};

/// Which backend BuildContext / the bench harness should materialize.
enum class MetricMode {
  kAuto,   // dense up to kDenseMetricAutoThreshold nodes, sparse beyond
  kDense,
  kSparse,
};

/// Largest node count kAuto serves densely.  Below this the O(n^2) matrix is
/// a few hundred MB at worst and its O(1) lookups win; beyond it the sparse
/// rows keep memory O~(n sqrt n).
inline constexpr NodeId kDenseMetricAutoThreshold = 4096;

/// Parses "auto" / "dense" / "sparse"; throws std::invalid_argument otherwise.
[[nodiscard]] MetricMode parse_metric_mode(const std::string& text);
[[nodiscard]] const char* metric_mode_name(MetricMode mode);

/// Builds the backend `mode` selects for this graph.  `threads` feeds the
/// dense backend's APSP fan-out (<= 0 resolves via default_apsp_threads);
/// the sparse backend expands lazily on querying threads instead.
[[nodiscard]] std::shared_ptr<const RoundtripMetric> make_roundtrip_metric(
    std::shared_ptr<const Digraph> graph, MetricMode mode = MetricMode::kAuto,
    int threads = 0);

/// Induced roundtrip distances within a member set: r restricted to paths
/// whose every node lies in the member mask.  Used by Section 4's clusters,
/// whose radii are measured in the induced subgraph.  Returns the induced
/// roundtrip distance center<->v for every member (kInfDist if not strongly
/// connected within the mask).
[[nodiscard]] std::vector<Dist> induced_roundtrip_from(
    const Digraph& g, const Digraph& reversed, NodeId center,
    const std::vector<char>& member_mask);

}  // namespace rtr

#endif  // RTR_RT_METRIC_H
