#include "rt/repair_oracle.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "graph/dijkstra.h"

namespace rtr {

namespace {

/// Bounded multi-source Dijkstra: dist[v] = min over sources w of d(w, v),
/// exact up to `budget` (entries beyond it stay kInfDist).  Seeding every
/// source at distance 0 makes one search cover the whole set -- the heap
/// just starts with |sources| zero keys instead of one.
[[nodiscard]] std::vector<Dist> multi_source_distances(
    const Digraph& g, const std::vector<NodeId>& sources, Dist budget) {
  std::vector<Dist> dist(static_cast<std::size_t>(g.node_count()), kInfDist);
  using Entry = std::pair<Dist, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (NodeId w : sources) {
    dist[static_cast<std::size_t>(w)] = 0;
    heap.emplace(0, w);
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Edge& e : g.out_edges(u)) {
      const Dist nd = d + e.weight;
      if (nd > budget) continue;
      auto& slot = dist[static_cast<std::size_t>(e.to)];
      if (nd < slot) {
        slot = nd;
        heap.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

/// Folds a sound lower bound on min(r_g(v, w)) over touched endpoints w into
/// rt_min.  `from[v]` = min_w d(w, v) and `to[v]` = min_w d(v, w) come from
/// one multi-source search each on g and g.reversed(); their sum lower-bounds
/// the true minimum roundtrip (the directional minima may pick different
/// endpoints), which is exactly the conservative direction the dirty() test
/// needs.  Two searches total, regardless of how many endpoints churned.
void fold_roundtrip_minima(const Digraph& g, const ChurnDelta& delta,
                           Dist budget, std::vector<Dist>& rt_min) {
  const std::vector<Dist> from =
      multi_source_distances(g, delta.touched, budget);
  const std::vector<Dist> to =
      multi_source_distances(g.reversed(), delta.touched, budget);
  for (std::size_t v = 0; v < rt_min.size(); ++v) {
    if (from[v] >= kInfDist || to[v] >= kInfDist) continue;
    const Dist rt = std::min<Dist>(from[v] + to[v], kInfDist);
    rt_min[v] = std::min(rt_min[v], rt);
  }
}

}  // namespace

BallRepairOracle build_ball_repair_oracle(const Digraph& old_graph,
                                          const Digraph& new_graph,
                                          const ChurnDelta& delta,
                                          Dist budget) {
  BallRepairOracle oracle;
  oracle.budget = budget;
  oracle.rt_min.assign(static_cast<std::size_t>(old_graph.node_count()),
                       kInfDist);
  fold_roundtrip_minima(old_graph, delta, budget, oracle.rt_min);
  fold_roundtrip_minima(new_graph, delta, budget, oracle.rt_min);
  return oracle;
}

bool delta_is_strictly_slack(const Digraph& new_graph,
                             const ChurnDelta& delta) {
  if (!delta.weight_only()) return false;
  BoundedDijkstraWorkspace ws;
  std::vector<BoundedReach> reach;
  for (const EdgeChange& e : delta.modified) {
    const Weight limit = e.min_weight();
    if (limit < 2) return false;  // nothing can undercut a unit edge
    reach.clear();
    dijkstra_bounded(new_graph, e.tail, limit - 1, ws, reach);
    bool detour = false;
    for (const BoundedReach& r : reach) {
      if (r.node == e.head) {
        detour = true;
        break;
      }
    }
    if (!detour) return false;
  }
  return true;
}

bool masked_detour_shorter(const Digraph& g, std::span<const NodeId> members,
                           NodeId tail, NodeId head, Weight limit) {
  if (limit < 2) return false;
  const Dist budget = static_cast<Dist>(limit) - 1;
  // Masks are tiny (O~(sqrt n) members), so a local (dist, node) heap over
  // member-indexed slots beats touching any n-sized array.
  const auto member_index = [&](NodeId v) -> std::int64_t {
    const auto it = std::lower_bound(members.begin(), members.end(), v);
    if (it == members.end() || *it != v) return -1;
    return it - members.begin();
  };
  const std::int64_t src = member_index(tail);
  const std::int64_t dst = member_index(head);
  if (src < 0 || dst < 0) return false;
  std::vector<Dist> dist(members.size(), kInfDist);
  using Entry = std::pair<Dist, std::int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, ui] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(ui)]) continue;
    const NodeId u = members[static_cast<std::size_t>(ui)];
    for (const Edge& e : g.out_edges(u)) {
      // Skip the edge under test itself: a detour must be a different path.
      if (u == tail && e.to == head) continue;
      const Dist nd = d + e.weight;
      if (nd > budget) continue;
      const std::int64_t vi = member_index(e.to);
      if (vi < 0) continue;
      if (e.to == head) return true;  // reached within budget < limit
      auto& slot = dist[static_cast<std::size_t>(vi)];
      if (nd < slot) {
        slot = nd;
        heap.emplace(nd, vi);
      }
    }
  }
  return false;
}

std::vector<char> dirty_in_tree_destinations(const Digraph& old_graph,
                                             const Digraph& new_graph,
                                             const ChurnDelta& delta) {
  const NodeId n = old_graph.node_count();
  std::vector<char> dirty(static_cast<std::size_t>(n), 0);

  // Forward distance rows d(w, .) for every touched endpoint, one SSSP per
  // endpoint per graph; row_of maps an endpoint to its row index.
  std::vector<std::int32_t> row_of(static_cast<std::size_t>(n), -1);
  for (std::size_t k = 0; k < delta.touched.size(); ++k) {
    row_of[static_cast<std::size_t>(delta.touched[k])] =
        static_cast<std::int32_t>(k);
  }
  const std::size_t rows = delta.touched.size();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<Dist> d_old(rows * nn, kInfDist);
  std::vector<Dist> d_new(rows * nn, kInfDist);
  DijkstraWorkspace ws;
  for (std::size_t k = 0; k < rows; ++k) {
    const NodeId w = delta.touched[k];
    dijkstra_distances_into(old_graph, w, ws,
                            {d_old.data() + k * nn, nn});
    dijkstra_distances_into(new_graph, w, ws,
                            {d_new.data() + k * nn, nn});
  }
  const auto row = [&](const std::vector<Dist>& d, NodeId w) {
    return d.data() +
           static_cast<std::size_t>(row_of[static_cast<std::size_t>(w)]) * nn;
  };

  // An edge marks dest dirty unless strictly slack: w + d(head, dest) >
  // d(tail, dest).  Infinite distances cannot happen on strongly connected
  // epochs, but guard anyway (an unreachable head is trivially slack).
  const auto mark_unless_slack = [&](const EdgeChange& e, Weight w,
                                     const std::vector<Dist>& d) {
    const Dist* from_head = row(d, e.head);
    const Dist* from_tail = row(d, e.tail);
    for (NodeId dest = 0; dest < n; ++dest) {
      const auto di = static_cast<std::size_t>(dest);
      if (from_head[di] >= kInfDist) continue;
      if (w + from_head[di] <= from_tail[di]) dirty[di] = 1;
    }
  };
  for (const EdgeChange& e : delta.removed) {
    mark_unless_slack(e, e.old_weight, d_old);
  }
  for (const EdgeChange& e : delta.added) {
    mark_unless_slack(e, e.new_weight, d_new);
  }
  for (const EdgeChange& e : delta.modified) {
    mark_unless_slack(e, e.old_weight, d_old);
    mark_unless_slack(e, e.new_weight, d_new);
  }
  return dirty;
}

}  // namespace rtr
