#include "graph/apsp.h"

#include <algorithm>

#include "graph/dijkstra.h"

namespace rtr {

DistMatrix::DistMatrix(NodeId n, Dist fill)
    : n_(n),
      data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill) {}

DistMatrix all_pairs_shortest_paths(const Digraph& g) {
  const NodeId n = g.node_count();
  DistMatrix m(n, kInfDist);
  // Arena layout for the n-Dijkstra loop: one CSR adjacency snapshot and one
  // heap buffer shared by every run, each run distance-only (no parent
  // arrays), results written directly into the matrix row.  After the first
  // run the loop performs no heap allocation at all.
  CsrAdjacency csr(g);
  DijkstraWorkspace ws;
  for (NodeId src = 0; src < n; ++src) {
    dijkstra_distances_into(csr, src, ws, m.row(src));
  }
  return m;
}

DistMatrix floyd_warshall(const Digraph& g) {
  const NodeId n = g.node_count();
  DistMatrix m(n, kInfDist);
  for (NodeId v = 0; v < n; ++v) m.set(v, v, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.out_edges(u)) {
      m.set(u, e.to, std::min(m.at(u, e.to), e.weight));
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      const Dist dik = m.at(i, k);
      if (dik >= kInfDist) continue;
      for (NodeId j = 0; j < n; ++j) {
        const Dist dkj = m.at(k, j);
        if (dkj >= kInfDist) continue;
        if (dik + dkj < m.at(i, j)) m.set(i, j, dik + dkj);
      }
    }
  }
  return m;
}

}  // namespace rtr
