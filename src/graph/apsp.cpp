#include "graph/apsp.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "graph/dijkstra.h"

namespace rtr {

DistMatrix::DistMatrix(NodeId n, Dist fill)
    : n_(n),
      data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill) {}

namespace {

std::atomic<int> g_default_apsp_threads{0};  // 0: hardware concurrency

}  // namespace

void set_default_apsp_threads(int threads) {
  g_default_apsp_threads.store(threads <= 0 ? 0 : threads,
                               std::memory_order_relaxed);
}

int default_apsp_threads() {
  return g_default_apsp_threads.load(std::memory_order_relaxed);
}

int resolve_apsp_threads(int requested) {
  if (requested >= 1) return requested;
  const int configured = default_apsp_threads();
  if (configured >= 1) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

DistMatrix all_pairs_shortest_paths_serial(const Digraph& g) {
  const NodeId n = g.node_count();
  DistMatrix m(n, kInfDist);
  // Arena layout for the n-Dijkstra loop: the frozen graph's own flat arc
  // arrays are the CSR, one workspace (heap + Dial buckets) is shared by
  // every run, each run distance-only (no parent arrays), results written
  // directly into the matrix row.  After the first run the loop performs no
  // heap allocation at all.
  DijkstraWorkspace ws;
  for (NodeId src = 0; src < n; ++src) {
    dijkstra_distances_into(g, src, ws, m.row(src));
  }
  return m;
}

DistMatrix all_pairs_shortest_paths(const Digraph& g, int threads) {
  const int workers = std::min<int>(resolve_apsp_threads(threads),
                                    std::max<NodeId>(1, g.node_count()));
  if (workers <= 1) return all_pairs_shortest_paths_serial(g);

  const NodeId n = g.node_count();
  DistMatrix m(n, kInfDist);
  // Dynamic source claiming: rows cost wildly different amounts only on
  // degenerate graphs, but an atomic ticket is cheap enough (one RMW per
  // source) that static striping has no advantage.  Each worker owns its
  // DijkstraWorkspace; rows never overlap, so no synchronization beyond the
  // ticket and the join is needed, and every row is computed by the same
  // deterministic routine the serial loop runs.
  std::atomic<NodeId> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&g, &m, &next, n] {
      DijkstraWorkspace ws;
      for (NodeId src = next.fetch_add(1, std::memory_order_relaxed); src < n;
           src = next.fetch_add(1, std::memory_order_relaxed)) {
        dijkstra_distances_into(g, src, ws, m.row(src));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return m;
}

DistMatrix floyd_warshall(const Digraph& g) {
  const NodeId n = g.node_count();
  DistMatrix m(n, kInfDist);
  for (NodeId v = 0; v < n; ++v) m.set(v, v, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.out_edges(u)) {
      m.set(u, e.to, std::min(m.at(u, e.to), e.weight));
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      const Dist dik = m.at(i, k);
      if (dik >= kInfDist) continue;
      for (NodeId j = 0; j < n; ++j) {
        const Dist dkj = m.at(k, j);
        if (dkj >= kInfDist) continue;
        if (dik + dkj < m.at(i, j)) m.set(i, j, dik + dkj);
      }
    }
  }
  return m;
}

}  // namespace rtr
