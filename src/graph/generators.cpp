#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace rtr {

namespace {

Weight rand_weight(Weight max_weight, Rng& rng) {
  return static_cast<Weight>(rng.uniform(1, std::max<Weight>(1, max_weight)));
}

// Tracks (u,v) pairs already present so generators never emit parallel edges.
class EdgeSet {
 public:
  bool insert(NodeId u, NodeId v) {
    return set_.insert((static_cast<std::int64_t>(u) << 32) | static_cast<std::uint32_t>(v))
        .second;
  }

 private:
  std::set<std::int64_t> set_;
};

}  // namespace

GraphBuilder random_strongly_connected(NodeId n, double avg_out_degree,
                                  Weight max_weight, Rng& rng) {
  if (n < 2) throw std::invalid_argument("random_strongly_connected: n >= 2");
  GraphBuilder g(n);
  EdgeSet seen;
  // Random Hamiltonian cycle: strong connectivity certificate.
  auto order = rng.permutation(n);
  for (NodeId i = 0; i < n; ++i) {
    NodeId u = order[static_cast<std::size_t>(i)];
    NodeId v = order[static_cast<std::size_t>((i + 1) % n)];
    seen.insert(u, v);
    g.add_edge(u, v, rand_weight(max_weight, rng));
  }
  auto target_edges =
      static_cast<std::int64_t>(std::llround(avg_out_degree * n));
  std::int64_t budget = 8 * target_edges + 64;  // bail out on dense graphs
  while (g.edge_count() < target_edges && budget-- > 0) {
    auto u = static_cast<NodeId>(rng.index(n));
    auto v = static_cast<NodeId>(rng.index(n));
    if (u == v) continue;
    if (!seen.insert(u, v)) continue;
    g.add_edge(u, v, rand_weight(max_weight, rng));
  }
  return g;
}

GraphBuilder one_way_grid(NodeId rows, NodeId cols, Weight max_weight, Rng& rng) {
  // A Manhattan Street Network (Maxemchuk) is a *torus*: every row is a full
  // one-way cycle (direction alternating by row) and every column likewise.
  // The wrap-around links are what make the alternating pattern strongly
  // connected; a planar cut of it has corner sinks.  Even dimensions keep
  // adjacent streets counter-directed everywhere.
  if (rows % 2 != 0) ++rows;
  if (cols % 2 != 0) ++cols;
  rows = std::max<NodeId>(rows, 2);
  cols = std::max<NodeId>(cols, 2);
  GraphBuilder g(rows * cols);
  auto id = [&](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    const bool left_to_right = (r % 2 == 0);
    for (NodeId c = 0; c < cols; ++c) {
      NodeId a = id(r, c), b = id(r, (c + 1) % cols);
      if (left_to_right) {
        g.add_edge(a, b, rand_weight(max_weight, rng));
      } else {
        g.add_edge(b, a, rand_weight(max_weight, rng));
      }
    }
  }
  for (NodeId c = 0; c < cols; ++c) {
    const bool top_to_bottom = (c % 2 == 0);
    for (NodeId r = 0; r < rows; ++r) {
      NodeId a = id(r, c), b = id((r + 1) % rows, c);
      if (top_to_bottom) {
        g.add_edge(a, b, rand_weight(max_weight, rng));
      } else {
        g.add_edge(b, a, rand_weight(max_weight, rng));
      }
    }
  }
  return g;
}

GraphBuilder ring_with_chords(NodeId n, NodeId chords, Weight max_weight, Rng& rng) {
  if (n < 2) throw std::invalid_argument("ring_with_chords: n >= 2");
  GraphBuilder g(n);
  EdgeSet seen;
  for (NodeId i = 0; i < n; ++i) {
    NodeId j = (i + 1) % n;
    seen.insert(i, j);
    g.add_edge(i, j, rand_weight(max_weight, rng));
  }
  std::int64_t budget = 8l * chords + 64;
  NodeId added = 0;
  while (added < chords && budget-- > 0) {
    auto u = static_cast<NodeId>(rng.index(n));
    auto v = static_cast<NodeId>(rng.index(n));
    if (u == v) continue;
    if (!seen.insert(u, v)) continue;
    g.add_edge(u, v, rand_weight(max_weight, rng));
    ++added;
  }
  return g;
}

GraphBuilder scale_free(NodeId n, NodeId attach, Weight max_weight, Rng& rng) {
  if (n < 3) throw std::invalid_argument("scale_free: n >= 3");
  GraphBuilder g(n);
  EdgeSet seen;
  // Ring backbone keeps the graph strongly connected.
  for (NodeId i = 0; i < n; ++i) {
    NodeId j = (i + 1) % n;
    seen.insert(i, j);
    g.add_edge(i, j, rand_weight(max_weight, rng));
  }
  // Preferential attachment by in-degree: maintain a repeated-endpoint urn.
  std::vector<NodeId> urn;
  urn.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(attach + 2));
  for (NodeId v = 0; v < n; ++v) urn.push_back(v);  // +1 smoothing
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId a = 0; a < attach; ++a) {
      for (int tries = 0; tries < 16; ++tries) {
        NodeId v = urn[static_cast<std::size_t>(rng.index(
            static_cast<std::int64_t>(urn.size())))];
        if (v == u) continue;
        if (!seen.insert(u, v)) continue;
        g.add_edge(u, v, rand_weight(max_weight, rng));
        urn.push_back(v);
        break;
      }
    }
  }
  return g;
}

GraphBuilder bidirected_random(NodeId n, double avg_degree, Weight max_weight,
                          Rng& rng) {
  if (n < 2) throw std::invalid_argument("bidirected_random: n >= 2");
  GraphBuilder g(n);
  EdgeSet seen;
  auto add_bidirected = [&](NodeId u, NodeId v, Weight w) {
    if (!seen.insert(u, v)) return false;
    seen.insert(v, u);
    g.add_edge(u, v, w);
    g.add_edge(v, u, w);
    return true;
  };
  // Random spanning tree: connectivity certificate.
  auto order = rng.permutation(n);
  for (NodeId i = 1; i < n; ++i) {
    NodeId u = order[static_cast<std::size_t>(i)];
    NodeId v = order[static_cast<std::size_t>(rng.index(i))];
    add_bidirected(u, v, rand_weight(max_weight, rng));
  }
  auto target_pairs = static_cast<std::int64_t>(std::llround(avg_degree * n / 2.0));
  std::int64_t budget = 8 * target_pairs + 64;
  while (g.edge_count() / 2 < target_pairs && budget-- > 0) {
    auto u = static_cast<NodeId>(rng.index(n));
    auto v = static_cast<NodeId>(rng.index(n));
    if (u == v) continue;
    add_bidirected(u, v, rand_weight(max_weight, rng));
  }
  return g;
}

GraphBuilder lower_bound_gadget(NodeId n, double density, Rng& rng) {
  if (n < 4) throw std::invalid_argument("lower_bound_gadget: n >= 4");
  if (n % 2 != 0) ++n;
  const NodeId half = n / 2;
  GraphBuilder g(n);
  // Weight-2 bidirected matching i <-> i+half keeps everything connected and
  // ensures non-adjacent bipartite pairs are at distance >= 2.
  for (NodeId i = 0; i < half; ++i) {
    g.add_edge(i, i + half, 2);
    g.add_edge(i + half, i, 2);
  }
  // Connect the left side in a weight-2 bidirected path so the graph is
  // connected even at density 0.
  for (NodeId i = 0; i + 1 < half; ++i) {
    g.add_edge(i, i + 1, 2);
    g.add_edge(i + 1, i, 2);
  }
  // The information payload: a random bipartite adjacency at weight 1.
  for (NodeId i = 0; i < half; ++i) {
    for (NodeId j = half; j < n; ++j) {
      if (j == i + half) continue;  // matched pair already present
      if (rng.chance(density)) {
        g.add_edge(i, j, 1);
        g.add_edge(j, i, 1);
      }
    }
  }
  return g;
}

GraphBuilder complete_digraph(NodeId n, Weight max_weight, Rng& rng) {
  if (n < 2) throw std::invalid_argument("complete_digraph: n >= 2");
  GraphBuilder g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) g.add_edge(u, v, rand_weight(max_weight, rng));
    }
  }
  return g;
}

std::string family_name(Family f) {
  switch (f) {
    case Family::kRandom: return "random";
    case Family::kGrid: return "grid";
    case Family::kRing: return "ring+chords";
    case Family::kScaleFree: return "scale-free";
    case Family::kBidirected: return "bidirected";
  }
  return "?";
}

GraphBuilder make_family(Family f, NodeId n, Weight max_weight, Rng& rng) {
  switch (f) {
    case Family::kRandom:
      return random_strongly_connected(n, 4.0, max_weight, rng);
    case Family::kGrid: {
      auto side = static_cast<NodeId>(std::lround(std::sqrt(static_cast<double>(n))));
      return one_way_grid(side, side, max_weight, rng);
    }
    case Family::kRing:
      return ring_with_chords(n, n / 2, max_weight, rng);
    case Family::kScaleFree:
      return scale_free(n, 3, max_weight, rng);
    case Family::kBidirected:
      return bidirected_random(n, 3.0, max_weight, rng);
  }
  throw std::invalid_argument("make_family: unknown family");
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> families = {
      Family::kRandom, Family::kGrid, Family::kRing, Family::kScaleFree,
      Family::kBidirected};
  return families;
}

}  // namespace rtr
