// Directed weighted graph core with the paper's fixed-port model (Section
// 1.1.3), split into a mutable builder and an immutable frozen graph.
//
// Every outgoing edge of a node carries a *port* number.  In the fixed-port
// model these numbers are assigned by an adversary from an O(n)-sized
// namespace with no global consistency: the port of (u,v) at u bears no
// relation to the port of (v,u) at v, and the same port number at two
// different nodes can lead to unrelated neighbours.  Routing schemes output
// ports, never neighbour ids, and must therefore store ports in their tables.
//
// The two-type lifecycle mirrors production routing stacks (extract ->
// contract -> query in OSRM terms):
//
//   * GraphBuilder -- the mutable construction-time representation
//     (vector-of-vectors adjacency).  Generators add edges, churn re-wires
//     them, and the Section 1.1.3 adversary relabels ports here.
//   * Digraph      -- the immutable, CSR-packed artifact `freeze()` emits.
//     All edges live in one contiguous array with a per-node offset index
//     (one cache-friendly row per node, no per-node heap blocks), plus two
//     per-node sorted resolution tables: port -> edge (the "hardware"
//     operation of every simulated forwarding hop) and head -> edge.  Both
//     resolve in O(log degree) instead of the builder's O(degree) scans.
//     Preprocessing (APSP, tree builds) and the forwarding walk only ever
//     see a Digraph; epoch churn thaws it back into a builder, mutates, and
//     freezes the next epoch.
//
// Freezing preserves the builder's row order edge-for-edge, so any
// iteration-order-dependent computation (Dijkstra relaxation order and its
// tie-breaks, snapshot bytes) is bit-identical across a thaw -> freeze
// round-trip.
#ifndef RTR_GRAPH_DIGRAPH_H
#define RTR_GRAPH_DIGRAPH_H

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/flat_vec.h"
#include "util/rng.h"
#include "util/types.h"

namespace rtr {

class AuditReport;
class ArenaStorage;
class ArenaView;
class ArenaWriter;

/// One directed edge as seen from its tail node.  Field order packs the two
/// 32-bit members ahead of the 64-bit weight so the struct is padding-free:
/// snapshot arenas write Edge arrays verbatim, and padding bytes would be
/// nondeterministic garbage in an otherwise byte-reproducible file.
struct Edge {
  NodeId to = kNoNode;
  Port port = kNoPort;
  Weight weight = 0;
};
static_assert(sizeof(Edge) == 16 && alignof(Edge) == 8,
              "Edge must stay padding-free: it is arena-mapped verbatim");
static_assert(std::is_trivially_copyable_v<Edge>);

class GraphBuilder;

/// An immutable directed graph with positive integer edge weights and
/// per-node ports, packed in compressed-sparse-row form.  Produced by
/// GraphBuilder::freeze(); a default-port edgeless graph can be made
/// directly with Digraph(n).
///
/// Invariants: weights are >= 1; port numbers and head nodes are unique per
/// tail node (no parallel edges); node ids are dense in [0, node_count()).
class Digraph {
 public:
  /// An edgeless frozen graph on n nodes.
  explicit Digraph(NodeId n);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(offset_.size() - 1);
  }
  [[nodiscard]] std::int64_t edge_count() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// The out-edges of u in builder insertion order, as one contiguous row of
  /// the shared CSR edge array.
  [[nodiscard]] std::span<const Edge> out_edges(NodeId u) const {
    const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
    const auto e =
        static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
    return {edges_.data() + b, e - b};
  }
  [[nodiscard]] NodeId out_degree(NodeId u) const {
    return static_cast<NodeId>(offset_[static_cast<std::size_t>(u) + 1] -
                               offset_[static_cast<std::size_t>(u)]);
  }

  /// True if u has an edge to v.  O(log degree) via the per-node head-sorted
  /// resolution table.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_by_head(u, v) != nullptr;
  }

  /// Resolves a port at node u to the edge it names, or nullptr if u has no
  /// such port.  This is the "hardware" operation a router performs when the
  /// forwarding function returns a port; O(log degree) via the per-node
  /// port-sorted resolution table.
  [[nodiscard]] const Edge* edge_by_port(NodeId u, Port p) const;

  /// The seed implementation of edge_by_port (linear scan over the row),
  /// retained so the bench harness re-measures the indexed lookup against it
  /// on every run (hot_path_deltas).  Not for production callers.
  [[nodiscard]] const Edge* edge_by_port_linear(NodeId u, Port p) const;

  /// The port of edge u -> v, or kNoPort.  Preprocessing-only helper (a
  /// distributed node knows its own ports); never used during forwarding.
  /// O(log degree).
  [[nodiscard]] Port port_of_edge(NodeId u, NodeId v) const {
    const Edge* e = find_by_head(u, v);
    return e == nullptr ? kNoPort : e->port;
  }

  /// Upper bound (exclusive) on port numbers; O(n) as the model requires.
  [[nodiscard]] std::int64_t port_space() const;

  /// The graph with every edge reversed (weights preserved, fresh sequential
  /// ports).
  [[nodiscard]] Digraph reversed() const;

  /// Largest edge weight (1 if there are no edges).
  [[nodiscard]] Weight max_weight() const {
    return max_weight_ > 0 ? max_weight_ : 1;
  }

  // -- flat-arc accessors for distance-only hot loops ------------------------
  // The structure-of-arrays mirror of the edge array (heads and weights in
  // separate contiguous vectors) streams 12 bytes per relaxed edge instead
  // of the 24-byte Edge; APSP's inner loop runs on these.  Arc indices are
  // positions in the shared CSR edge array.

  [[nodiscard]] std::int64_t arcs_begin(NodeId u) const {
    return offset_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] std::int64_t arcs_end(NodeId u) const {
    return offset_[static_cast<std::size_t>(u) + 1];
  }
  [[nodiscard]] NodeId arc_head(std::int64_t i) const {
    return arc_head_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Weight arc_weight(std::int64_t i) const {
    return arc_weight_[static_cast<std::size_t>(i)];
  }

  /// Auditable: CSR row monotonicity, edge-range validity, SoA mirror
  /// consistency, and the port/head resolution tables (sorted keys, unique
  /// per row, and a bijection onto the row's edge slots).  Records entries
  /// under the "graph" component.
  void audit(AuditReport& report) const;

  /// Writes every frozen array into "graph/..." arena sections (v2 snapshot
  /// payload; no re-encoding, the arrays ARE the format).
  void save_arena(ArenaWriter& w) const;

  /// Reconstructs a Digraph as zero-copy views over an arena's "graph/..."
  /// sections, holding the arena's storage alive.  Counts are cross-checked
  /// against the arena header; throws SnapshotArenaError on disagreement.
  [[nodiscard]] static Digraph from_arena(const ArenaView& a);

 private:
  friend class GraphBuilder;
  friend struct AuditTestPeer;
  Digraph() = default;  // freeze() fills the arrays

  /// Binary search in u's head-sorted resolution table.
  [[nodiscard]] const Edge* find_by_head(NodeId u, NodeId v) const;

  FlatVec<std::int64_t> offset_;  // size n+1; row bounds in edges_
  FlatVec<Edge> edges_;           // CSR rows, builder insertion order
  FlatVec<NodeId> arc_head_;      // SoA mirror of edges_[i].to
  FlatVec<Weight> arc_weight_;    // SoA mirror of edges_[i].weight
  // Per-node resolution tables, segmented exactly like edges_ (offset_):
  // sort keys contiguous and separate from the row slots they resolve to.
  FlatVec<Port> port_key_;           // u's ports, ascending
  FlatVec<std::int32_t> port_slot_;  // row slot of port_key_[k]
  FlatVec<NodeId> head_key_;         // u's heads, ascending
  FlatVec<std::int32_t> head_slot_;  // row slot of head_key_[k]
  Weight max_weight_ = 0;
  // Non-null iff the FlatVecs are views into a mapped/owned arena region;
  // keeps the bytes alive for the lifetime of every view.
  std::shared_ptr<const ArenaStorage> arena_;
};

/// The mutable construction-time graph: one growable edge row per node.
/// freeze() packs it into an immutable Digraph; thawing a Digraph back into
/// a builder (the churn path) reproduces its rows verbatim, ports included.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n);

  /// Thaw: a mutable copy of a frozen graph, row order and ports preserved.
  explicit GraphBuilder(const Digraph& g);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] std::int64_t edge_count() const { return edge_count_; }

  /// Adds edge u -> v with the given weight (>= 1).  Ports are assigned
  /// sequentially per tail node: 0, 1, 2, ... on a fresh builder, and one
  /// past the node's largest existing port on a thawed or
  /// explicitly-ported row (so a thaw -> add_edge -> freeze cycle never
  /// collides with an inherited adversarial port).  Call
  /// assign_adversarial_ports() afterwards to scramble them.
  void add_edge(NodeId u, NodeId v, Weight w);

  /// Appends all of `edges` (to/weight/port with explicit port numbers) at
  /// tail node u, validating ranges, weights, self-loops, and per-node port
  /// uniqueness in O(d log d).  Used when replaying a frozen graph -- e.g. a
  /// snapshot -- whose adversarial port choice must be reproduced exactly,
  /// because the routing tables built against it store those port numbers.
  void add_edges_with_ports(NodeId u, const std::vector<Edge>& edges);

  [[nodiscard]] std::span<const Edge> out_edges(NodeId u) const {
    return out_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] NodeId out_degree(NodeId u) const {
    return static_cast<NodeId>(out_[static_cast<std::size_t>(u)].size());
  }

  /// Re-labels all ports with adversarial (random, sparse, per-node unique)
  /// numbers drawn from [0, port_space()).  Models Section 1.1.3.
  void assign_adversarial_ports(Rng& rng);

  /// Upper bound (exclusive) on port numbers; O(n) as the model requires.
  [[nodiscard]] std::int64_t port_space() const;

  /// Packs the rows into an immutable CSR Digraph (insertion order
  /// preserved) and builds the per-node port/head resolution tables.
  /// Throws std::invalid_argument on a duplicate port or parallel edge.
  [[nodiscard]] Digraph freeze() const;

 private:
  std::vector<std::vector<Edge>> out_;
  std::vector<Port> next_port_;  // next sequential label per node (add_edge)
  std::int64_t edge_count_ = 0;
};

}  // namespace rtr

#endif  // RTR_GRAPH_DIGRAPH_H
