// Directed weighted graph with the paper's fixed-port model (Section 1.1.3).
//
// Every outgoing edge of a node carries a *port* number.  In the fixed-port
// model these numbers are assigned by an adversary from an O(n)-sized
// namespace with no global consistency: the port of (u,v) at u bears no
// relation to the port of (v,u) at v, and the same port number at two
// different nodes can lead to unrelated neighbours.  Routing schemes output
// ports, never neighbour ids, and must therefore store ports in their tables.
#ifndef RTR_GRAPH_DIGRAPH_H
#define RTR_GRAPH_DIGRAPH_H

#include <span>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace rtr {

/// One directed edge as seen from its tail node.
struct Edge {
  NodeId to = kNoNode;
  Weight weight = 0;
  Port port = kNoPort;
};

/// A directed graph with positive integer edge weights and per-node ports.
///
/// Invariants: weights are >= 1; port numbers are unique per tail node; node
/// ids are dense in [0, node_count()).
class Digraph {
 public:
  explicit Digraph(NodeId n);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] std::int64_t edge_count() const { return edge_count_; }

  /// Adds edge u -> v with the given weight (>= 1).  Ports are assigned
  /// sequentially per tail node (0, 1, 2, ...); call
  /// assign_adversarial_ports() afterwards to scramble them.
  void add_edge(NodeId u, NodeId v, Weight w);

  /// Appends all of `edges` (to/weight/port with explicit port numbers) at
  /// tail node u, validating ranges, weights, self-loops, and per-node port
  /// uniqueness in O(d log d).  Used when replaying a frozen graph -- e.g. a
  /// snapshot -- whose adversarial port choice must be reproduced exactly,
  /// because the routing tables built against it store those port numbers.
  void add_edges_with_ports(NodeId u, const std::vector<Edge>& edges);

  [[nodiscard]] std::span<const Edge> out_edges(NodeId u) const {
    return out_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] NodeId out_degree(NodeId u) const {
    return static_cast<NodeId>(out_[static_cast<std::size_t>(u)].size());
  }

  /// True if u has an edge to v.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Resolves a port at node u to the edge it names, or nullptr if u has no
  /// such port.  This is the "hardware" operation a router performs when the
  /// forwarding function returns a port.
  [[nodiscard]] const Edge* edge_by_port(NodeId u, Port p) const;

  /// The port of edge u -> v, or kNoPort.  Preprocessing-only helper (a
  /// distributed node knows its own ports); never used during forwarding.
  [[nodiscard]] Port port_of_edge(NodeId u, NodeId v) const;

  /// Re-labels all ports with adversarial (random, sparse, per-node unique)
  /// numbers drawn from [0, port_space()).  Models Section 1.1.3.
  void assign_adversarial_ports(Rng& rng);

  /// Upper bound (exclusive) on port numbers; O(n) as the model requires.
  [[nodiscard]] std::int64_t port_space() const;

  /// The graph with every edge reversed (weights preserved, fresh ports).
  [[nodiscard]] Digraph reversed() const;

  /// Largest edge weight (1 if there are no edges).
  [[nodiscard]] Weight max_weight() const;

 private:
  std::vector<std::vector<Edge>> out_;
  std::int64_t edge_count_ = 0;
};

}  // namespace rtr

#endif  // RTR_GRAPH_DIGRAPH_H
