// Single-source shortest paths (Dijkstra) with the tree shapes the routing
// schemes consume:
//
//  * OutTree  -- shortest paths *from* the root: parent pointers and, for
//    each tree edge parent->child, the child and the port at the parent.
//    This is the paper's OutTree(C) (Section 3.2).
//  * InTree   -- shortest paths *to* the root: for each node, the next hop
//    (and its port) on a shortest path toward the root.  This is InTree(C).
//
// Restricted variants compute the same trees inside the subgraph induced by a
// member mask, which Section 4's cluster double-trees require.
//
// Repeated-run callers (APSP is n runs, cover construction is one run per
// cluster) pass a DijkstraWorkspace so the distance array and the binary-heap
// buffer are allocated once and reused: after the first run the hot loop
// performs no heap allocation at all.  The workspace-free overloads remain
// for one-shot callers.  dijkstra_distances_reference() preserves the seed
// implementation (std::priority_queue, fresh buffers per call) as the
// differential oracle the arena is tested bit-identical against.
#ifndef RTR_GRAPH_DIJKSTRA_H
#define RTR_GRAPH_DIJKSTRA_H

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Shortest-path out-tree from a root.  parent[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and parent == kNoNode.
struct OutTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;          // d(root, v)
  std::vector<NodeId> parent;      // predecessor of v on the root->v path
  std::vector<Port> parent_port;   // port at parent[v] leading to v
};

/// Shortest-path in-tree toward a root.  next[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and next == kNoNode.
struct InTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;       // d(v, root)
  std::vector<NodeId> next;     // successor of v on the v->root path
  std::vector<Port> next_port;  // port at v leading to next[v]
};

/// Reusable scratch for repeated Dijkstra runs.  The buffers grow to the
/// largest graph seen and are then reused verbatim; one workspace serves any
/// number of sequential runs (it is NOT safe to share across threads).
struct DijkstraWorkspace {
  std::vector<Dist> dist;                       // distance-only results
  std::vector<std::pair<Dist, NodeId>> heap;    // binary-heap buffer
  /// Circular bucket queue (Dial) used by the small-weight distance-only
  /// fast path; one bucket per residual distance in [0, max_weight].
  std::vector<std::vector<NodeId>> buckets;
};

/// One settled node of a bounded run: the exact distance d(src, node).
struct BoundedReach {
  NodeId node = kNoNode;
  Dist dist = kInfDist;
};

/// Scratch for repeated *bounded* runs.  The dist array is reset sparsely via
/// the touched list, so a run costs O(settled + touched), not O(n) -- the
/// whole point of stopping Dijkstra at a radius.  Not safe to share across
/// threads.
struct BoundedDijkstraWorkspace {
  std::vector<Dist> dist;                     // kInfDist outside touched
  std::vector<NodeId> touched;                // nodes whose dist slot is dirty
  std::vector<std::pair<Dist, NodeId>> heap;  // binary-heap buffer
};

/// Bounded single-source run: appends (u, d(src,u)) to `out` for every node u
/// with d(src, u) <= limit, in ascending settled order (ties in heap pop
/// order).  Distances are exact global distances -- a node settled within the
/// limit cannot have a shorter path through nodes beyond it.  The frontier
/// stops expanding past `limit`, so the cost is proportional to the region
/// explored, not to the graph.
void dijkstra_bounded(const Digraph& g, NodeId src, Dist limit,
                      BoundedDijkstraWorkspace& ws,
                      std::vector<BoundedReach>& out);

/// One member of a bounded roundtrip ball: exact d(src, node) out and
/// d(node, src) back.
struct RoundtripReach {
  NodeId node = kNoNode;
  Dist d_out = kInfDist;
  Dist d_in = kInfDist;
};

/// Scratch for roundtrip_ball_bounded.  Settled markers are epoch-stamped so
/// back-to-back runs never pay an O(n) clear.  Not safe to share across
/// threads.
struct RoundtripBallWorkspace {
  BoundedDijkstraWorkspace fwd;
  BoundedDijkstraWorkspace rev;
  std::vector<std::uint64_t> fwd_mark;  // == epoch when settled forward
  std::vector<std::uint64_t> rev_mark;  // == epoch when settled backward
  std::uint64_t epoch = 0;
};

/// Appends every node u with d(src,u) + d(u,src) <= budget to `out`, each
/// with its exact one-way distances, in no particular order.  `reversed`
/// must be g.reversed().  A non-negative `member_cap` aborts the search as
/// soon as more than cap members have been confirmed and returns false (the
/// appended members are genuine but the set is incomplete) -- this is how a
/// count-probing caller learns "too many" in O(cap) work instead of walking
/// an oversize ball to the end.  Returns true when the ball is complete.
///
/// This is NOT two radius-`budget` bounded runs intersected: on
/// expander-like graphs the one-directional ball of radius `budget` is
/// close to the whole graph even when the roundtrip ball is O~(sqrt n).
/// Instead two Dijkstras advance in tandem (smaller frontier first) and a
/// node's out-edges are only relaxed while d_out(x) + LB(d_in(x)) <= budget,
/// where LB is the exact distance once x is settled backward and the
/// backward frontier key otherwise (sound: Dijkstra settles in ascending
/// order).  Roundtrip balls are closed under shortest-path prefixes --
/// every node on a shortest v->w or w->v path of a member w is itself a
/// member -- so pruned nodes can never sit on a member's shortest path and
/// member distances stay exact.  Exploration is proportional to the
/// half-radius one-directional balls, not the full-radius ones.
bool roundtrip_ball_bounded(const Digraph& g, const Digraph& reversed,
                            NodeId src, Dist budget,
                            RoundtripBallWorkspace& ws,
                            std::vector<RoundtripReach>& out,
                            std::int64_t member_cap = -1);

/// Distances from src to every node.
[[nodiscard]] std::vector<Dist> dijkstra_distances(const Digraph& g, NodeId src);

/// Distance-only run into ws.dist (parents are never materialized, which
/// skips two array fills and one store per edge relaxation).
void dijkstra_distances_into(const Digraph& g, NodeId src, DijkstraWorkspace& ws);

/// Distance-only run writing into caller storage (e.g. an APSP matrix row);
/// `out.size()` must equal g.node_count().  The APSP hot loop: streams the
/// frozen graph's flat arc arrays (structure-of-arrays heads/weights) with a
/// Dial bucket queue for small weights and the binary heap otherwise; no
/// allocation after the first run with a reused workspace.  The frozen
/// Digraph IS the CSR, so there is no per-call adjacency snapshot to build.
void dijkstra_distances_into(const Digraph& g, NodeId src, DijkstraWorkspace& ws,
                             std::span<Dist> out);

/// The seed implementation (std::priority_queue, fresh buffers per call),
/// kept as the differential oracle for the workspace fast path.
[[nodiscard]] std::vector<Dist> dijkstra_distances_reference(const Digraph& g,
                                                             NodeId src);

/// Out-tree of shortest paths from root over the whole graph.
[[nodiscard]] OutTree dijkstra_out_tree(const Digraph& g, NodeId root);
[[nodiscard]] OutTree dijkstra_out_tree(const Digraph& g, NodeId root,
                                        DijkstraWorkspace& ws);

/// In-tree of shortest paths to root over the whole graph.  `reversed` must
/// be g.reversed(); passing it explicitly lets callers amortize the reversal.
[[nodiscard]] InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed,
                                      NodeId root);
[[nodiscard]] InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed,
                                      NodeId root, DijkstraWorkspace& ws);

/// Out-tree restricted to the subgraph induced by member_mask (root must be a
/// member; non-members keep dist == kInfDist).
[[nodiscard]] OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                               const std::vector<char>& member_mask);
[[nodiscard]] OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                               const std::vector<char>& member_mask,
                                               DijkstraWorkspace& ws);

/// In-tree restricted to the induced subgraph.
[[nodiscard]] InTree dijkstra_in_tree_within(const Digraph& g,
                                             const Digraph& reversed, NodeId root,
                                             const std::vector<char>& member_mask);
[[nodiscard]] InTree dijkstra_in_tree_within(const Digraph& g,
                                             const Digraph& reversed, NodeId root,
                                             const std::vector<char>& member_mask,
                                             DijkstraWorkspace& ws);

/// Reconstructs the root->v path of an out-tree (node sequence including both
/// endpoints).  Returns std::nullopt if v is unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> out_tree_path(const OutTree& t,
                                                               NodeId v);

}  // namespace rtr

#endif  // RTR_GRAPH_DIJKSTRA_H
