// Single-source shortest paths (Dijkstra) with the tree shapes the routing
// schemes consume:
//
//  * OutTree  -- shortest paths *from* the root: parent pointers and, for
//    each tree edge parent->child, the child and the port at the parent.
//    This is the paper's OutTree(C) (Section 3.2).
//  * InTree   -- shortest paths *to* the root: for each node, the next hop
//    (and its port) on a shortest path toward the root.  This is InTree(C).
//
// Restricted variants compute the same trees inside the subgraph induced by a
// member mask, which Section 4's cluster double-trees require.
//
// Repeated-run callers (APSP is n runs, cover construction is one run per
// cluster) pass a DijkstraWorkspace so the distance array and the binary-heap
// buffer are allocated once and reused: after the first run the hot loop
// performs no heap allocation at all.  The workspace-free overloads remain
// for one-shot callers.  dijkstra_distances_reference() preserves the seed
// implementation (std::priority_queue, fresh buffers per call) as the
// differential oracle the arena is tested bit-identical against.
#ifndef RTR_GRAPH_DIJKSTRA_H
#define RTR_GRAPH_DIJKSTRA_H

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Shortest-path out-tree from a root.  parent[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and parent == kNoNode.
struct OutTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;          // d(root, v)
  std::vector<NodeId> parent;      // predecessor of v on the root->v path
  std::vector<Port> parent_port;   // port at parent[v] leading to v
};

/// Shortest-path in-tree toward a root.  next[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and next == kNoNode.
struct InTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;       // d(v, root)
  std::vector<NodeId> next;     // successor of v on the v->root path
  std::vector<Port> next_port;  // port at v leading to next[v]
};

/// Reusable scratch for repeated Dijkstra runs.  The buffers grow to the
/// largest graph seen and are then reused verbatim; one workspace serves any
/// number of sequential runs (it is NOT safe to share across threads).
struct DijkstraWorkspace {
  std::vector<Dist> dist;                       // distance-only results
  std::vector<std::pair<Dist, NodeId>> heap;    // binary-heap buffer
  /// Circular bucket queue (Dial) used by the small-weight distance-only
  /// fast path; one bucket per residual distance in [0, max_weight].
  std::vector<std::vector<NodeId>> buckets;
};

/// Distances from src to every node.
[[nodiscard]] std::vector<Dist> dijkstra_distances(const Digraph& g, NodeId src);

/// Distance-only run into ws.dist (parents are never materialized, which
/// skips two array fills and one store per edge relaxation).
void dijkstra_distances_into(const Digraph& g, NodeId src, DijkstraWorkspace& ws);

/// Distance-only run writing into caller storage (e.g. an APSP matrix row);
/// `out.size()` must equal g.node_count().  The APSP hot loop: streams the
/// frozen graph's flat arc arrays (structure-of-arrays heads/weights) with a
/// Dial bucket queue for small weights and the binary heap otherwise; no
/// allocation after the first run with a reused workspace.  The frozen
/// Digraph IS the CSR, so there is no per-call adjacency snapshot to build.
void dijkstra_distances_into(const Digraph& g, NodeId src, DijkstraWorkspace& ws,
                             std::span<Dist> out);

/// The seed implementation (std::priority_queue, fresh buffers per call),
/// kept as the differential oracle for the workspace fast path.
[[nodiscard]] std::vector<Dist> dijkstra_distances_reference(const Digraph& g,
                                                             NodeId src);

/// Out-tree of shortest paths from root over the whole graph.
[[nodiscard]] OutTree dijkstra_out_tree(const Digraph& g, NodeId root);
[[nodiscard]] OutTree dijkstra_out_tree(const Digraph& g, NodeId root,
                                        DijkstraWorkspace& ws);

/// In-tree of shortest paths to root over the whole graph.  `reversed` must
/// be g.reversed(); passing it explicitly lets callers amortize the reversal.
[[nodiscard]] InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed,
                                      NodeId root);
[[nodiscard]] InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed,
                                      NodeId root, DijkstraWorkspace& ws);

/// Out-tree restricted to the subgraph induced by member_mask (root must be a
/// member; non-members keep dist == kInfDist).
[[nodiscard]] OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                               const std::vector<char>& member_mask);
[[nodiscard]] OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                               const std::vector<char>& member_mask,
                                               DijkstraWorkspace& ws);

/// In-tree restricted to the induced subgraph.
[[nodiscard]] InTree dijkstra_in_tree_within(const Digraph& g,
                                             const Digraph& reversed, NodeId root,
                                             const std::vector<char>& member_mask);
[[nodiscard]] InTree dijkstra_in_tree_within(const Digraph& g,
                                             const Digraph& reversed, NodeId root,
                                             const std::vector<char>& member_mask,
                                             DijkstraWorkspace& ws);

/// Reconstructs the root->v path of an out-tree (node sequence including both
/// endpoints).  Returns std::nullopt if v is unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> out_tree_path(const OutTree& t,
                                                               NodeId v);

}  // namespace rtr

#endif  // RTR_GRAPH_DIJKSTRA_H
