// Single-source shortest paths (Dijkstra) with the tree shapes the routing
// schemes consume:
//
//  * OutTree  -- shortest paths *from* the root: parent pointers and, for
//    each tree edge parent->child, the child and the port at the parent.
//    This is the paper's OutTree(C) (Section 3.2).
//  * InTree   -- shortest paths *to* the root: for each node, the next hop
//    (and its port) on a shortest path toward the root.  This is InTree(C).
//
// Restricted variants compute the same trees inside the subgraph induced by a
// member mask, which Section 4's cluster double-trees require.
#ifndef RTR_GRAPH_DIJKSTRA_H
#define RTR_GRAPH_DIJKSTRA_H

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Shortest-path out-tree from a root.  parent[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and parent == kNoNode.
struct OutTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;          // d(root, v)
  std::vector<NodeId> parent;      // predecessor of v on the root->v path
  std::vector<Port> parent_port;   // port at parent[v] leading to v
};

/// Shortest-path in-tree toward a root.  next[root] == kNoNode.
/// Unreachable nodes have dist == kInfDist and next == kNoNode.
struct InTree {
  NodeId root = kNoNode;
  std::vector<Dist> dist;       // d(v, root)
  std::vector<NodeId> next;     // successor of v on the v->root path
  std::vector<Port> next_port;  // port at v leading to next[v]
};

/// Distances from src to every node.
[[nodiscard]] std::vector<Dist> dijkstra_distances(const Digraph& g, NodeId src);

/// Out-tree of shortest paths from root over the whole graph.
[[nodiscard]] OutTree dijkstra_out_tree(const Digraph& g, NodeId root);

/// In-tree of shortest paths to root over the whole graph.  `reversed` must
/// be g.reversed(); passing it explicitly lets callers amortize the reversal.
[[nodiscard]] InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed,
                                      NodeId root);

/// Out-tree restricted to the subgraph induced by member_mask (root must be a
/// member; non-members keep dist == kInfDist).
[[nodiscard]] OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                               const std::vector<char>& member_mask);

/// In-tree restricted to the induced subgraph.
[[nodiscard]] InTree dijkstra_in_tree_within(const Digraph& g,
                                             const Digraph& reversed, NodeId root,
                                             const std::vector<char>& member_mask);

/// Reconstructs the root->v path of an out-tree (node sequence including both
/// endpoints).  Returns std::nullopt if v is unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> out_tree_path(const OutTree& t,
                                                               NodeId v);

}  // namespace rtr

#endif  // RTR_GRAPH_DIJKSTRA_H
