// Topology churn for the live serving layer (the paper's Section 6 model
// made operational).
//
// The TINN claim is that names survive topology change: only the *graph*
// churns, never the name space.  churn_step() therefore maps a strongly
// connected digraph to a new strongly connected digraph over the SAME node
// id set -- node ids (and hence the NameAssignment keyed by them) are
// stable by construction -- while mutating everything topology-dependent:
//
//   * edge re-wiring        -- an edge keeps its tail but re-points its head
//                              (an ISP re-homing a circuit),
//   * weight perturbation   -- link costs re-drawn (congestion, re-pricing),
//   * node re-home          -- a node leaves (its whole adjacency, in and
//                              out, is dropped) and immediately rejoins with
//                              fresh random links, keeping its name,
//   * port re-labeling      -- the adversary re-numbers every port, so no
//                              scheme can smuggle state across epochs
//                              through port values.
//
// The result is always strongly connected (schemes require it): mutation is
// retried a bounded number of times and, as a last resort, repaired with a
// random Hamiltonian cycle.
#ifndef RTR_GRAPH_CHURN_H
#define RTR_GRAPH_CHURN_H

#include "graph/digraph.h"
#include "util/rng.h"

namespace rtr {

struct ChurnOptions {
  /// Probability that an edge keeps its tail but re-points to a new head.
  double rewire_fraction = 0.10;
  /// Probability that a surviving edge's weight is re-drawn from
  /// [1, max_weight].
  double perturb_fraction = 0.25;
  /// Number of nodes that leave (dropping every incident edge) and rejoin
  /// with fresh random links in the same step.  Their ids -- and names --
  /// are unchanged.
  NodeId rehome_nodes = 0;
  /// Upper bound for re-drawn weights.
  Weight max_weight = 4;
  /// true: fresh adversarial port numbers for the whole new epoch (Section
  /// 1.1.3's adversary strikes again after every change).  false:
  /// port-stable churn -- surviving edges keep their exact port numbers and
  /// only new/rewired edges draw fresh (per-tail unique) ones.
  bool reassign_ports = true;
  /// Mutation retries before the Hamiltonian-cycle connectivity repair.
  int max_attempts = 8;
};

/// One churn epoch: a new strongly connected digraph over the same node ids.
/// Mutation happens on a GraphBuilder; the returned graph is frozen (CSR)
/// and ready for preprocessing and serving, like every epoch's graph.
[[nodiscard]] Digraph churn_step(const Digraph& g, const ChurnOptions& opt,
                                 Rng& rng);

}  // namespace rtr

#endif  // RTR_GRAPH_CHURN_H
