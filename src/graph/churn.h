// Topology churn for the live serving layer (the paper's Section 6 model
// made operational).
//
// The TINN claim is that names survive topology change: only the *graph*
// churns, never the name space.  churn_step() therefore maps a strongly
// connected digraph to a new strongly connected digraph over the SAME node
// id set -- node ids (and hence the NameAssignment keyed by them) are
// stable by construction -- while mutating everything topology-dependent:
//
//   * edge re-wiring        -- an edge keeps its tail but re-points its head
//                              (an ISP re-homing a circuit),
//   * weight perturbation   -- link costs re-drawn (congestion, re-pricing),
//   * node re-home          -- a node leaves (its whole adjacency, in and
//                              out, is dropped) and immediately rejoins with
//                              fresh random links, keeping its name,
//   * port re-labeling      -- the adversary re-numbers every port, so no
//                              scheme can smuggle state across epochs
//                              through port values.
//
// The result is always strongly connected (schemes require it): mutation is
// retried a bounded number of times and, as a last resort, repaired with a
// random Hamiltonian cycle.
#ifndef RTR_GRAPH_CHURN_H
#define RTR_GRAPH_CHURN_H

#include "graph/digraph.h"
#include "util/rng.h"

namespace rtr {

struct ChurnOptions {
  /// Probability that an edge keeps its tail but re-points to a new head.
  double rewire_fraction = 0.10;
  /// Probability that a surviving edge's weight is re-drawn from
  /// [1, max_weight].
  double perturb_fraction = 0.25;
  /// Number of nodes that leave (dropping every incident edge) and rejoin
  /// with fresh random links in the same step.  Their ids -- and names --
  /// are unchanged.
  NodeId rehome_nodes = 0;
  /// Upper bound for re-drawn weights.
  Weight max_weight = 4;
  /// true: fresh adversarial port numbers for the whole new epoch (Section
  /// 1.1.3's adversary strikes again after every change).  false:
  /// port-stable churn -- surviving edges keep their exact port numbers and
  /// only new/rewired edges draw fresh (per-tail unique) ones.
  bool reassign_ports = true;
  /// Mutation retries before the Hamiltonian-cycle connectivity repair.
  int max_attempts = 8;
};

/// One churn epoch: a new strongly connected digraph over the same node ids.
/// Mutation happens on a GraphBuilder; the returned graph is frozen (CSR)
/// and ready for preprocessing and serving, like every epoch's graph.
[[nodiscard]] Digraph churn_step(const Digraph& g, const ChurnOptions& opt,
                                 Rng& rng);

/// Non-disruptive churn: weight increases confined to strictly slack edges
/// (links degrading without causing any reroute -- congestion jitter, the
/// regime OSRM-style re-customization targets).  Roughly `fraction` of the
/// edges are candidates; a candidate is jittered only when a strictly
/// shorter tail->head detour exists (d(tail, head) < weight, checked with a
/// bounded search), which proves the edge lies on no shortest path, so
/// increasing its weight changes no distance in the graph.  The returned
/// graph keeps the input's CSR structure and port numbers bit-for-bit; only
/// the weight array differs.  Connectivity is untouched.  This is the churn
/// script under which incremental repair should be O(affected region):
/// every full-graph shortest-path structure provably survives, and only
/// substructures that see both endpoints locally can change.
[[nodiscard]] Digraph slack_jitter_step(const Digraph& g, double fraction,
                                        Rng& rng);

/// Adds ~`fraction * edge_count` redundant shadowed links: extra edges
/// priced strictly above an existing shortest path between their endpoints
/// (backup circuits more expensive than the primary route), with fresh
/// adversarial ports for the whole graph.  A sparse random digraph with
/// near-uniform weights has almost no strictly slack edges, so
/// slack_jitter_step finds nothing to re-price; seeding the instance with
/// shadowed links gives it a realistic population.  Distances are unchanged
/// (every new edge is undercut by construction) and strong connectivity is
/// preserved (edges are only added).
[[nodiscard]] Digraph add_shadowed_links(const Digraph& g, double fraction,
                                         Rng& rng);

}  // namespace rtr

#endif  // RTR_GRAPH_CHURN_H
