// Strongly connected components (Tarjan) and strong-connectivity checks.
//
// Every scheme in the paper requires a strongly connected input (Section 1.1);
// builders validate with is_strongly_connected() and generators use
// strongly_connected_components() in tests.
#ifndef RTR_GRAPH_SCC_H
#define RTR_GRAPH_SCC_H

#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Component index per node (components numbered in reverse topological
/// order, as Tarjan emits them).
[[nodiscard]] std::vector<std::int32_t> strongly_connected_components(
    const Digraph& g);

[[nodiscard]] bool is_strongly_connected(const Digraph& g);

/// True if the subgraph induced by `members` (given as a node->bool mask) is
/// strongly connected.  Used to validate cover clusters (Section 4).
[[nodiscard]] bool is_strongly_connected_subgraph(
    const Digraph& g, const std::vector<char>& member_mask);

}  // namespace rtr

#endif  // RTR_GRAPH_SCC_H
