// All-pairs shortest path distances.
//
// The roundtrip metric r(u,v) = d(u,v) + d(v,u) (Section 1.1) is derived from
// this matrix.  Preprocessing in the paper is centralized (Section 6 leaves
// distributed construction open), so a full APSP pass is the intended
// substrate: n Dijkstra runs, O(n m log n) total.
#ifndef RTR_GRAPH_APSP_H
#define RTR_GRAPH_APSP_H

#include <span>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Dense n x n distance matrix.
class DistMatrix {
 public:
  DistMatrix() = default;
  DistMatrix(NodeId n, Dist fill);

  [[nodiscard]] NodeId size() const { return n_; }

  [[nodiscard]] Dist at(NodeId u, NodeId v) const {
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }
  void set(NodeId u, NodeId v, Dist d) {
    data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(v)] = d;
  }

  /// Row u as contiguous storage (d(u, *)); lets a Dijkstra run write its
  /// distance array straight into the matrix with no intermediate copy.
  [[nodiscard]] std::span<Dist> row(NodeId u) {
    return {data_.data() +
                static_cast<std::size_t>(u) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }
  [[nodiscard]] std::span<const Dist> row(NodeId u) const {
    return {data_.data() +
                static_cast<std::size_t>(u) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }

 private:
  NodeId n_ = 0;
  std::vector<Dist> data_;
};

/// APSP via n Dijkstra runs.  Requires strong connectivity is NOT assumed
/// here; unreachable pairs get kInfDist (callers that need strong
/// connectivity validate separately).
[[nodiscard]] DistMatrix all_pairs_shortest_paths(const Digraph& g);

/// APSP via Floyd-Warshall; O(n^3).  Test oracle for the Dijkstra-based path.
[[nodiscard]] DistMatrix floyd_warshall(const Digraph& g);

}  // namespace rtr

#endif  // RTR_GRAPH_APSP_H
