// All-pairs shortest path distances.
//
// The roundtrip metric r(u,v) = d(u,v) + d(v,u) (Section 1.1) is derived from
// this matrix.  Preprocessing in the paper is centralized (Section 6 leaves
// distributed construction open), so a full APSP pass is the intended
// substrate: n Dijkstra runs, O(n m log n) total.
#ifndef RTR_GRAPH_APSP_H
#define RTR_GRAPH_APSP_H

#include <span>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// Dense n x n distance matrix.
class DistMatrix {
 public:
  DistMatrix() = default;
  DistMatrix(NodeId n, Dist fill);

  [[nodiscard]] NodeId size() const { return n_; }

  [[nodiscard]] Dist at(NodeId u, NodeId v) const {
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }
  void set(NodeId u, NodeId v, Dist d) {
    data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(v)] = d;
  }

  /// Row u as contiguous storage (d(u, *)); lets a Dijkstra run write its
  /// distance array straight into the matrix with no intermediate copy.
  [[nodiscard]] std::span<Dist> row(NodeId u) {
    return {data_.data() +
                static_cast<std::size_t>(u) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }
  [[nodiscard]] std::span<const Dist> row(NodeId u) const {
    return {data_.data() +
                static_cast<std::size_t>(u) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }

 private:
  NodeId n_ = 0;
  std::vector<Dist> data_;
};

/// APSP via n Dijkstra runs.  Strong connectivity is NOT assumed here;
/// unreachable pairs get kInfDist (callers that need strong connectivity
/// validate separately).
///
/// Source rows are independent, so they are fanned out across a std::thread
/// pool: each worker owns a DijkstraWorkspace and claims sources from a
/// shared atomic counter, writing distances straight into its matrix row.
/// Every row is computed by the identical per-source routine regardless of
/// which thread claims it, so the result is bit-identical to the serial
/// path for any thread count (pinned by test, including under TSAN).
///
/// `threads` <= 0 resolves via default_apsp_threads(); 1 runs the serial
/// loop inline with no thread spawned.
[[nodiscard]] DistMatrix all_pairs_shortest_paths(const Digraph& g,
                                                  int threads = 0);

/// The single-threaded arena loop (PR 4's APSP path), retained in-binary as
/// the before-side of the bench harness's parallel-APSP hot_path_delta and
/// as the differential oracle for the pool.
[[nodiscard]] DistMatrix all_pairs_shortest_paths_serial(const Digraph& g);

/// Resolves a requested thread count: values >= 1 pass through; <= 0 means
/// the process-wide default (set_default_apsp_threads), which itself falls
/// back to std::thread::hardware_concurrency().
[[nodiscard]] int resolve_apsp_threads(int requested);

/// Process-wide APSP thread default, consumed when callers pass threads <= 0
/// (RoundtripMetric construction, EpochManager rebuilds).  0 restores the
/// hardware-concurrency default.  Wired to the tools' --threads flag.
void set_default_apsp_threads(int threads);
[[nodiscard]] int default_apsp_threads();

/// APSP via Floyd-Warshall; O(n^3).  Test oracle for the Dijkstra-based path.
[[nodiscard]] DistMatrix floyd_warshall(const Digraph& g);

}  // namespace rtr

#endif  // RTR_GRAPH_APSP_H
