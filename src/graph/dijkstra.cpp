#include "graph/dijkstra.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <stdexcept>

namespace rtr {

namespace {

using QueueItem = std::pair<Dist, NodeId>;  // (distance, node), min-heap

// Core Dijkstra over the subgraph induced by `mask` (nullptr = whole graph).
// Fills dist (and, when kWithParents, parent/parent_port) relative to `g`, so
// for in-trees the caller passes the reversed graph and reinterprets parents
// as next hops.
//
// The heap lives in a caller-owned buffer driven with std::push_heap /
// std::pop_heap -- exactly the algorithms std::priority_queue is specified
// in terms of, so pop order (and therefore every tie-break) is bit-identical
// to the seed implementation while the buffer's capacity survives across
// runs.  Distance-only runs (kWithParents = false) skip the parent arrays
// entirely: two fewer O(n) fills per run and one fewer store per relaxation.
template <bool kWithParents>
void run_core(const Digraph& g, NodeId src, const std::vector<char>* mask,
              std::span<Dist> dist, std::vector<NodeId>* parent,
              std::vector<Port>* parent_port, std::vector<QueueItem>& heap) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::fill(dist.begin(), dist.end(), kInfDist);
  if constexpr (kWithParents) {
    parent->assign(n, kNoNode);
    parent_port->assign(n, kNoPort);
  }
  if (mask != nullptr && !(*mask)[static_cast<std::size_t>(src)]) {
    throw std::invalid_argument("dijkstra: source not in member mask");
  }
  heap.clear();
  dist[static_cast<std::size_t>(src)] = 0;
  heap.emplace_back(0, src);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d != dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Edge& e : g.out_edges(u)) {
      if (mask != nullptr && !(*mask)[static_cast<std::size_t>(e.to)]) continue;
      const Dist nd = d + e.weight;
      const auto to = static_cast<std::size_t>(e.to);
      if (nd < dist[to]) {
        dist[to] = nd;
        if constexpr (kWithParents) {
          (*parent)[to] = u;
          (*parent_port)[to] = e.port;
        }
        heap.emplace_back(nd, e.to);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
}

// Tree-shaped run into the tree's own arrays (they must outlive the
// workspace), reusing only the heap buffer.
void run_tree(const Digraph& g, NodeId src, const std::vector<char>* mask,
              std::vector<Dist>& dist, std::vector<NodeId>& parent,
              std::vector<Port>& parent_port, DijkstraWorkspace& ws) {
  dist.resize(static_cast<std::size_t>(g.node_count()));
  run_core<true>(g, src, mask, dist, &parent, &parent_port, ws.heap);
}

}  // namespace

void dijkstra_bounded(const Digraph& g, NodeId src, Dist limit,
                      BoundedDijkstraWorkspace& ws,
                      std::vector<BoundedReach>& out) {
  const auto n = static_cast<std::size_t>(g.node_count());
  if (src < 0 || static_cast<std::size_t>(src) >= n) {
    throw std::invalid_argument("dijkstra_bounded: source out of range");
  }
  // Sparse reset: only slots dirtied by the previous run are re-infinitized,
  // so back-to-back small-radius runs never pay an O(n) fill.
  if (ws.dist.size() < n) ws.dist.assign(n, kInfDist);
  for (const NodeId v : ws.touched) {
    ws.dist[static_cast<std::size_t>(v)] = kInfDist;
  }
  ws.touched.clear();
  ws.heap.clear();
  ws.dist[static_cast<std::size_t>(src)] = 0;
  ws.touched.push_back(src);
  ws.heap.emplace_back(0, src);
  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
    const auto [d, u] = ws.heap.back();
    ws.heap.pop_back();
    if (d != ws.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    out.push_back(BoundedReach{u, d});
    const std::int64_t end = g.arcs_end(u);
    for (std::int64_t i = g.arcs_begin(u); i < end; ++i) {
      const Dist nd = d + g.arc_weight(i);
      if (nd > limit) continue;  // the frontier stops at the radius
      const auto to = static_cast<std::size_t>(g.arc_head(i));
      if (nd < ws.dist[to]) {
        if (ws.dist[to] == kInfDist) ws.touched.push_back(g.arc_head(i));
        ws.dist[to] = nd;
        ws.heap.emplace_back(nd, g.arc_head(i));
        std::push_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
      }
    }
  }
}

namespace {

// One half of the tandem roundtrip-ball search.  `mine`/`mine_mark` are this
// direction's state, `other`/`other_mark` the opposite direction's; `frontier`
// of a direction is the smallest valid key in its heap (kInfDist when
// drained).  Pops the next valid entry of `mine`, settles it, and relaxes its
// edges iff the node can still be a ball member.
struct RoundtripSide {
  const Digraph* graph = nullptr;
  BoundedDijkstraWorkspace* ws = nullptr;
  std::vector<std::uint64_t>* mark = nullptr;
};

// Smallest valid heap key of a side, discarding stale tops (a stale top is
// always an already-settled node: any superseded entry has a smaller live
// twin below it, so the minimum is never superseded-stale).
Dist roundtrip_frontier(RoundtripSide& s, std::uint64_t epoch) {
  auto& heap = s.ws->heap;
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    if ((*s.mark)[static_cast<std::size_t>(u)] != epoch &&
        d == s.ws->dist[static_cast<std::size_t>(u)]) {
      return d;
    }
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
  }
  return kInfDist;
}

}  // namespace

bool roundtrip_ball_bounded(const Digraph& g, const Digraph& reversed,
                            NodeId src, Dist budget,
                            RoundtripBallWorkspace& ws,
                            std::vector<RoundtripReach>& out,
                            std::int64_t member_cap) {
  const auto n = static_cast<std::size_t>(g.node_count());
  if (src < 0 || static_cast<std::size_t>(src) >= n) {
    throw std::invalid_argument("roundtrip_ball_bounded: source out of range");
  }
  if (budget < 0) return true;
  std::int64_t members = 0;
  const std::uint64_t epoch = ++ws.epoch;
  if (ws.fwd_mark.size() < n) ws.fwd_mark.assign(n, 0);
  if (ws.rev_mark.size() < n) ws.rev_mark.assign(n, 0);
  RoundtripSide sides[2] = {{&g, &ws.fwd, &ws.fwd_mark},
                            {&reversed, &ws.rev, &ws.rev_mark}};
  for (RoundtripSide& s : sides) {
    if (s.ws->dist.size() < n) s.ws->dist.assign(n, kInfDist);
    for (const NodeId v : s.ws->touched) {
      s.ws->dist[static_cast<std::size_t>(v)] = kInfDist;
    }
    s.ws->touched.clear();
    s.ws->heap.clear();
    s.ws->dist[static_cast<std::size_t>(src)] = 0;
    s.ws->touched.push_back(src);
    s.ws->heap.emplace_back(0, src);
  }
  for (;;) {
    const Dist kf = roundtrip_frontier(sides[0], epoch);
    const Dist kr = roundtrip_frontier(sides[1], epoch);
    if (kf >= kInfDist && kr >= kInfDist) break;
    // Advance the smaller frontier (forward on ties): balanced half-radius
    // exploration is what keeps both sides small.
    const int side = kf <= kr ? 0 : 1;
    RoundtripSide& s = sides[side];
    RoundtripSide& o = sides[1 - side];
    auto& heap = s.ws->heap;
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    const auto uz = static_cast<std::size_t>(u);
    (*s.mark)[uz] = epoch;  // settled in this direction; dist[u] is final
    const bool other_settled = (*o.mark)[uz] == epoch;
    if (other_settled) {
      const Dist sum = d + o.ws->dist[uz];
      if (sum > budget) continue;  // proven non-member: never relax
      // Second settle of a member: report it exactly once.
      const Dist d_out = side == 0 ? d : o.ws->dist[uz];
      const Dist d_in = side == 0 ? o.ws->dist[uz] : d;
      out.push_back(RoundtripReach{u, d_out, d_in});
      // A count-probing caller only needs to learn "more than cap members":
      // aborting here caps an overshooting probe at O(cap) confirmations
      // instead of walking the whole oversize ball.
      if (member_cap >= 0 && ++members > member_cap) return false;
    } else {
      // Unsettled in the other direction means its distance there is at
      // least that frontier key, so this test can only cull non-members.
      const Dist other_lb = side == 0 ? kr : kf;
      if (other_lb > budget - d) continue;
    }
    const Digraph& dg = *s.graph;
    const std::int64_t end = dg.arcs_end(u);
    for (std::int64_t i = dg.arcs_begin(u); i < end; ++i) {
      const Dist nd = d + dg.arc_weight(i);
      if (nd > budget) continue;
      const auto to = static_cast<std::size_t>(dg.arc_head(i));
      if (nd < s.ws->dist[to]) {
        if (s.ws->dist[to] == kInfDist) s.ws->touched.push_back(dg.arc_head(i));
        s.ws->dist[to] = nd;
        s.ws->heap.emplace_back(nd, dg.arc_head(i));
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
  return true;
}

std::vector<Dist> dijkstra_distances(const Digraph& g, NodeId src) {
  DijkstraWorkspace ws;
  dijkstra_distances_into(g, src, ws);
  return std::move(ws.dist);
}

void dijkstra_distances_into(const Digraph& g, NodeId src,
                             DijkstraWorkspace& ws) {
  ws.dist.resize(static_cast<std::size_t>(g.node_count()));
  dijkstra_distances_into(g, src, ws, ws.dist);
}

namespace {

// Largest edge weight the Dial bucket queue is used for.  Dial's outer loop
// walks every integer distance up to the max settled distance, so its cost
// is O(m + hop_diameter * max_weight) per source: small weights keep the
// empty-bucket scan negligible, while a large max_weight on a high-diameter
// graph (e.g. a weighted ring) would make the scan dwarf the heap it
// replaces.  64 keeps the worst case (~64n probes) at the same order as the
// heap's m log n while covering every in-repo generator (weights <= 12);
// anything heavier falls back to the binary heap (same distances, different
// queue).
constexpr Weight kDialMaxWeight = 64;

// Dial's empty-bucket scan walks every integer distance up to the max settled
// distance, which is bounded only by (n - 1) * max_weight: on a high-diameter
// graph (e.g. a large weighted ring) that scan balloons to ~n * max_weight
// probes per source and dwarfs both the relaxations and the heap it replaced.
// The weight cap alone does not catch this -- it bounds the bucket *count*,
// not the scan *length*.  Budget the worst-case scan against the relaxation
// work O(m + n): beyond ~8x we fall back to the binary heap (same distances,
// different queue).  Every in-repo generator (weights <= 12, m >= n) stays
// comfortably on the Dial path at any n.
[[nodiscard]] bool dial_scan_within_budget(const Digraph& g) {
  const auto scan = static_cast<std::int64_t>(g.max_weight()) *
                    static_cast<std::int64_t>(g.node_count());
  const std::int64_t work =
      g.edge_count() + static_cast<std::int64_t>(g.node_count());
  return scan <= 8 * work;
}

// Dial's algorithm: a circular bucket queue with max_weight + 1 buckets.
// Dijkstra's settled distances are non-decreasing and every relaxation adds
// at most max_weight, so active keys always span <= max_weight + 1 values --
// bucket (d mod nb) holds exactly the nodes with tentative distance d.  No
// comparisons, no log factor; stale entries are skipped by the dist check
// like the heap path.  Shortest distances are unique, so the result is
// bit-identical to any other Dijkstra regardless of pop order.
void dial_run(const Digraph& g, NodeId src,
              std::vector<std::vector<NodeId>>& buckets, std::span<Dist> out) {
  const auto nb = static_cast<std::size_t>(g.max_weight()) + 1;
  if (buckets.size() < nb) buckets.resize(nb);
  std::int64_t pending = 1;
  out[static_cast<std::size_t>(src)] = 0;
  buckets[0].push_back(src);
  for (Dist d = 0; pending > 0; ++d) {
    auto& bucket = buckets[static_cast<std::size_t>(d) % nb];
    if (bucket.empty()) continue;
    pending -= static_cast<std::int64_t>(bucket.size());
    // Relaxed targets land in other buckets (weights are >= 1 and <= nb - 1),
    // so iterating by index while the vector is stable is safe.
    for (const NodeId u : bucket) {
      if (out[static_cast<std::size_t>(u)] != d) continue;  // stale entry
      const std::int64_t end = g.arcs_end(u);
      for (std::int64_t i = g.arcs_begin(u); i < end; ++i) {
        const Dist nd = d + g.arc_weight(i);
        const auto to = static_cast<std::size_t>(g.arc_head(i));
        if (nd < out[to]) {
          out[to] = nd;
          buckets[static_cast<std::size_t>(nd) % nb].push_back(g.arc_head(i));
          ++pending;
        }
      }
    }
    bucket.clear();
  }
}

}  // namespace

void dijkstra_distances_into(const Digraph& g, NodeId src,
                             DijkstraWorkspace& ws, std::span<Dist> out) {
  if (out.size() != static_cast<std::size_t>(g.node_count())) {
    throw std::invalid_argument(
        "dijkstra_distances_into: output span size != node count");
  }
  std::fill(out.begin(), out.end(), kInfDist);
  if (g.edge_count() > 0 && g.max_weight() <= kDialMaxWeight &&
      dial_scan_within_budget(g)) {
    dial_run(g, src, ws.buckets, out);
    return;
  }
  auto& heap = ws.heap;
  heap.clear();
  out[static_cast<std::size_t>(src)] = 0;
  heap.emplace_back(0, src);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d != out[static_cast<std::size_t>(u)]) continue;  // stale entry
    const std::int64_t end = g.arcs_end(u);
    for (std::int64_t i = g.arcs_begin(u); i < end; ++i) {
      const Dist nd = d + g.arc_weight(i);
      const auto to = static_cast<std::size_t>(g.arc_head(i));
      if (nd < out[to]) {
        out[to] = nd;
        heap.emplace_back(nd, g.arc_head(i));
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
}

std::vector<Dist> dijkstra_distances_reference(const Digraph& g, NodeId src) {
  // The seed implementation, verbatim: fresh vectors and a std::priority_queue
  // per call.  tests/bench compare the workspace path against this oracle.
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<Dist> dist(n, kInfDist);
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;
    for (const Edge& e : g.out_edges(u)) {
      Dist nd = d + e.weight;
      auto to = static_cast<std::size_t>(e.to);
      if (nd < dist[to]) {
        dist[to] = nd;
        pq.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

OutTree dijkstra_out_tree(const Digraph& g, NodeId root) {
  DijkstraWorkspace ws;
  return dijkstra_out_tree(g, root, ws);
}

OutTree dijkstra_out_tree(const Digraph& g, NodeId root, DijkstraWorkspace& ws) {
  OutTree t;
  t.root = root;
  run_tree(g, root, nullptr, t.dist, t.parent, t.parent_port, ws);
  return t;
}

OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                 const std::vector<char>& member_mask) {
  DijkstraWorkspace ws;
  return dijkstra_out_tree_within(g, root, member_mask, ws);
}

OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                 const std::vector<char>& member_mask,
                                 DijkstraWorkspace& ws) {
  OutTree t;
  t.root = root;
  run_tree(g, root, &member_mask, t.dist, t.parent, t.parent_port, ws);
  return t;
}

namespace {

// Builds an InTree from a Dijkstra run on the reversed graph.  The reversed
// run's parent[v] is the next hop of v toward the root in the original graph;
// the port must be looked up in the *original* graph because ports are
// per-tail-node and the reversal has fresh ports.
InTree in_tree_from_reversed_run(const Digraph& g, NodeId root,
                                 std::vector<Dist> dist,
                                 std::vector<NodeId> parent) {
  InTree t;
  t.root = root;
  t.dist = std::move(dist);
  t.next = std::move(parent);
  t.next_port.assign(t.next.size(), kNoPort);
  for (std::size_t v = 0; v < t.next.size(); ++v) {
    if (t.next[v] != kNoNode) {
      // Any minimum-weight parallel edge v -> next[v] is fine; Digraph
      // forbids parallel edges so the lookup is unambiguous.
      t.next_port[v] = g.port_of_edge(static_cast<NodeId>(v), t.next[v]);
    }
  }
  return t;
}

InTree in_tree_run(const Digraph& g, const Digraph& reversed, NodeId root,
                   const std::vector<char>* mask, DijkstraWorkspace& ws) {
  std::vector<Dist> dist(static_cast<std::size_t>(reversed.node_count()));
  std::vector<NodeId> parent;
  std::vector<Port> port_unused;
  run_core<true>(reversed, root, mask, dist, &parent, &port_unused, ws.heap);
  return in_tree_from_reversed_run(g, root, std::move(dist), std::move(parent));
}

}  // namespace

InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed, NodeId root) {
  DijkstraWorkspace ws;
  return in_tree_run(g, reversed, root, nullptr, ws);
}

InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed, NodeId root,
                        DijkstraWorkspace& ws) {
  return in_tree_run(g, reversed, root, nullptr, ws);
}

InTree dijkstra_in_tree_within(const Digraph& g, const Digraph& reversed,
                               NodeId root, const std::vector<char>& member_mask) {
  DijkstraWorkspace ws;
  return in_tree_run(g, reversed, root, &member_mask, ws);
}

InTree dijkstra_in_tree_within(const Digraph& g, const Digraph& reversed,
                               NodeId root, const std::vector<char>& member_mask,
                               DijkstraWorkspace& ws) {
  return in_tree_run(g, reversed, root, &member_mask, ws);
}

std::optional<std::vector<NodeId>> out_tree_path(const OutTree& t, NodeId v) {
  if (t.dist[static_cast<std::size_t>(v)] >= kInfDist) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId x = v; x != kNoNode; x = t.parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace rtr
