#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace rtr {

namespace {

using QueueItem = std::pair<Dist, NodeId>;  // (distance, node), min-heap

// Core Dijkstra over the subgraph induced by `mask` (nullptr = whole graph).
// Fills dist/parent/parent_port relative to `g` (so for in-trees the caller
// passes the reversed graph and reinterprets parents as next hops).
void run(const Digraph& g, NodeId src, const std::vector<char>* mask,
         std::vector<Dist>& dist, std::vector<NodeId>& parent,
         std::vector<Port>& parent_port) {
  const auto n = static_cast<std::size_t>(g.node_count());
  dist.assign(n, kInfDist);
  parent.assign(n, kNoNode);
  parent_port.assign(n, kNoPort);
  if (mask != nullptr && !(*mask)[static_cast<std::size_t>(src)]) {
    throw std::invalid_argument("dijkstra: source not in member mask");
  }
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Edge& e : g.out_edges(u)) {
      if (mask != nullptr && !(*mask)[static_cast<std::size_t>(e.to)]) continue;
      Dist nd = d + e.weight;
      auto to = static_cast<std::size_t>(e.to);
      if (nd < dist[to]) {
        dist[to] = nd;
        parent[to] = u;
        parent_port[to] = e.port;
        pq.emplace(nd, e.to);
      }
    }
  }
}

}  // namespace

std::vector<Dist> dijkstra_distances(const Digraph& g, NodeId src) {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  std::vector<Port> port;
  run(g, src, nullptr, dist, parent, port);
  return dist;
}

OutTree dijkstra_out_tree(const Digraph& g, NodeId root) {
  OutTree t;
  t.root = root;
  run(g, root, nullptr, t.dist, t.parent, t.parent_port);
  return t;
}

OutTree dijkstra_out_tree_within(const Digraph& g, NodeId root,
                                 const std::vector<char>& member_mask) {
  OutTree t;
  t.root = root;
  run(g, root, &member_mask, t.dist, t.parent, t.parent_port);
  return t;
}

namespace {

// Builds an InTree from a Dijkstra run on the reversed graph.  The reversed
// run's parent[v] is the next hop of v toward the root in the original graph;
// the port must be looked up in the *original* graph because ports are
// per-tail-node and the reversal has fresh ports.
InTree in_tree_from_reversed_run(const Digraph& g, NodeId root,
                                 std::vector<Dist> dist,
                                 std::vector<NodeId> parent) {
  InTree t;
  t.root = root;
  t.dist = std::move(dist);
  t.next = std::move(parent);
  t.next_port.assign(t.next.size(), kNoPort);
  for (std::size_t v = 0; v < t.next.size(); ++v) {
    if (t.next[v] != kNoNode) {
      // Any minimum-weight parallel edge v -> next[v] is fine; Digraph
      // forbids parallel edges so the lookup is unambiguous.
      t.next_port[v] = g.port_of_edge(static_cast<NodeId>(v), t.next[v]);
    }
  }
  return t;
}

}  // namespace

InTree dijkstra_in_tree(const Digraph& g, const Digraph& reversed, NodeId root) {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  std::vector<Port> port_unused;
  run(reversed, root, nullptr, dist, parent, port_unused);
  return in_tree_from_reversed_run(g, root, std::move(dist), std::move(parent));
}

InTree dijkstra_in_tree_within(const Digraph& g, const Digraph& reversed,
                               NodeId root, const std::vector<char>& member_mask) {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  std::vector<Port> port_unused;
  run(reversed, root, &member_mask, dist, parent, port_unused);
  return in_tree_from_reversed_run(g, root, std::move(dist), std::move(parent));
}

std::optional<std::vector<NodeId>> out_tree_path(const OutTree& t, NodeId v) {
  if (t.dist[static_cast<std::size_t>(v)] >= kInfDist) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId x = v; x != kNoNode; x = t.parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace rtr
