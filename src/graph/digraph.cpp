#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

Digraph::Digraph(NodeId n) : out_(static_cast<std::size_t>(n)) {
  if (n < 0) throw std::invalid_argument("Digraph: negative node count");
}

void Digraph::add_edge(NodeId u, NodeId v, Weight w) {
  if (u < 0 || u >= node_count() || v < 0 || v >= node_count()) {
    throw std::out_of_range("Digraph::add_edge: node id out of range");
  }
  if (w < 1) throw std::invalid_argument("Digraph::add_edge: weight must be >= 1");
  if (u == v) throw std::invalid_argument("Digraph::add_edge: self loop");
  auto& edges = out_[static_cast<std::size_t>(u)];
  edges.push_back(Edge{v, w, static_cast<Port>(edges.size())});
  ++edge_count_;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  for (const Edge& e : out_edges(u)) {
    if (e.to == v) return true;
  }
  return false;
}

const Edge* Digraph::edge_by_port(NodeId u, Port p) const {
  for (const Edge& e : out_edges(u)) {
    if (e.port == p) return &e;
  }
  return nullptr;
}

Port Digraph::port_of_edge(NodeId u, NodeId v) const {
  for (const Edge& e : out_edges(u)) {
    if (e.to == v) return e.port;
  }
  return kNoPort;
}

std::int64_t Digraph::port_space() const {
  // 4n gives the adversary slack to choose sparse, misleading numbers while
  // staying within the O(n) namespace of Section 1.1.3.
  return 4 * std::max<std::int64_t>(1, node_count());
}

void Digraph::assign_adversarial_ports(Rng& rng) {
  const std::int64_t space = port_space();
  for (auto& edges : out_) {
    // Draw distinct random port numbers for this node's out-edges.
    auto degree = static_cast<std::int32_t>(edges.size());
    if (degree == 0) continue;
    auto labels = rng.sample_without_replacement(
        static_cast<std::int32_t>(space), degree);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      edges[i].port = static_cast<Port>(labels[i]);
    }
  }
}

Digraph Digraph::reversed() const {
  Digraph rev(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) {
      rev.add_edge(e.to, u, e.weight);
    }
  }
  return rev;
}

Weight Digraph::max_weight() const {
  Weight mx = 1;
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) mx = std::max(mx, e.weight);
  }
  return mx;
}

}  // namespace rtr
