#include "graph/digraph.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "io/arena.h"

namespace rtr {

// ----------------------------------------------------------------- Digraph --

Digraph::Digraph(NodeId n) {
  if (n < 0) throw std::invalid_argument("Digraph: negative node count");
  offset_ = std::vector<std::int64_t>(static_cast<std::size_t>(n) + 1, 0);
}

const Edge* Digraph::edge_by_port(NodeId u, Port p) const {
  const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
  const auto e =
      static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
  const auto first = port_key_.begin() + static_cast<std::ptrdiff_t>(b);
  const auto last = port_key_.begin() + static_cast<std::ptrdiff_t>(e);
  const auto it = std::lower_bound(first, last, p);
  if (it == last || *it != p) return nullptr;
  const auto k = static_cast<std::size_t>(it - port_key_.begin());
  return &edges_[b + static_cast<std::size_t>(port_slot_[k])];
}

const Edge* Digraph::edge_by_port_linear(NodeId u, Port p) const {
  for (const Edge& e : out_edges(u)) {
    if (e.port == p) return &e;
  }
  return nullptr;
}

const Edge* Digraph::find_by_head(NodeId u, NodeId v) const {
  const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
  const auto e =
      static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
  const auto first = head_key_.begin() + static_cast<std::ptrdiff_t>(b);
  const auto last = head_key_.begin() + static_cast<std::ptrdiff_t>(e);
  const auto it = std::lower_bound(first, last, v);
  if (it == last || *it != v) return nullptr;
  const auto k = static_cast<std::size_t>(it - head_key_.begin());
  return &edges_[b + static_cast<std::size_t>(head_slot_[k])];
}

std::int64_t Digraph::port_space() const {
  // 4n gives the adversary slack to choose sparse, misleading numbers while
  // staying within the O(n) namespace of Section 1.1.3.
  return 4 * std::max<std::int64_t>(1, node_count());
}

void Digraph::audit(AuditReport& report) const {
  auto scope = report.scope("graph");
  const NodeId n = node_count();
  const auto m = static_cast<std::size_t>(edge_count());

  // CSR framing: the offset index must start at 0, end at the edge count,
  // and never decrease (every node owns one well-formed row).
  bool rows_monotone = offset_.front() == 0 &&
                       offset_.back() == static_cast<std::int64_t>(m);
  std::string row_detail;
  for (std::size_t u = 0; rows_monotone && u + 1 < offset_.size(); ++u) {
    if (offset_[u] > offset_[u + 1]) {
      rows_monotone = false;
      row_detail = "offset decreases at node " + std::to_string(u);
    }
  }
  report.check("csr-row-monotone", rows_monotone, std::move(row_detail));

  report.check("soa-mirror-sizes",
               arc_head_.size() == m && arc_weight_.size() == m &&
                   port_key_.size() == m && port_slot_.size() == m &&
                   head_key_.size() == m && head_slot_.size() == m,
               "arc/resolution arrays must mirror the edge array");
  if (!rows_monotone || arc_head_.size() != m || arc_weight_.size() != m ||
      port_key_.size() != m || port_slot_.size() != m ||
      head_key_.size() != m || head_slot_.size() != m) {
    // The per-row walks below index through offset_ and the mirrors; with
    // broken framing they would read out of bounds, so stop at the framing
    // verdict (already FAIL).
    return;
  }

  bool edges_valid = true;
  bool soa_consistent = true;
  bool ports_in_space = true;
  Weight seen_max = 0;
  std::string edge_detail, soa_detail, port_detail;
  const std::int64_t space = port_space();
  for (NodeId u = 0; u < n; ++u) {
    const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
    const auto e =
        static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
    for (std::size_t i = b; i < e; ++i) {
      const Edge& edge = edges_[i];
      if (edges_valid &&
          (edge.to < 0 || edge.to >= n || edge.to == u || edge.weight < 1)) {
        edges_valid = false;
        edge_detail = "edge slot " + std::to_string(i) + " at node " +
                      std::to_string(u) + " (to=" + std::to_string(edge.to) +
                      ", w=" + std::to_string(edge.weight) + ")";
      }
      if (soa_consistent &&
          (arc_head_[i] != edge.to || arc_weight_[i] != edge.weight)) {
        soa_consistent = false;
        soa_detail = "arc mirror diverges at slot " + std::to_string(i);
      }
      if (ports_in_space && (edge.port < 0 || edge.port >= space)) {
        ports_in_space = false;
        port_detail = "port " + std::to_string(edge.port) + " at node " +
                      std::to_string(u) + " outside [0, " +
                      std::to_string(space) + ")";
      }
      seen_max = std::max(seen_max, edge.weight);
    }
  }
  report.check("edges-in-range", edges_valid, std::move(edge_detail));
  report.check("soa-mirror-consistent", soa_consistent, std::move(soa_detail));
  report.check("ports-in-namespace", ports_in_space, std::move(port_detail));
  report.check("max-weight-cached", seen_max == max_weight_,
               "cached " + std::to_string(max_weight_) + ", recomputed " +
                   std::to_string(seen_max));

  // Per-row resolution tables: keys strictly ascending (sorted + unique, the
  // binary-search contract of edge_by_port/find_by_head) and the slot column
  // a bijection onto the row's edge slots with matching keys.
  bool port_table_ok = true;
  bool head_table_ok = true;
  std::string port_table_detail, head_table_detail;
  std::vector<bool> hit;
  const auto check_row_table =
      [&](NodeId u, std::size_t b, std::size_t e, const auto& keys,
          const FlatVec<std::int32_t>& slots, const auto key_of, bool& ok,
          std::string& detail) {
        const auto d = e - b;
        hit.assign(d, false);
        for (std::size_t k = b; ok && k < e; ++k) {
          if (k > b && keys[k] <= keys[k - 1]) {
            ok = false;
            detail = "keys not strictly ascending at node " + std::to_string(u);
            return;
          }
          const std::int32_t slot = slots[k];
          if (slot < 0 || static_cast<std::size_t>(slot) >= d ||
              hit[static_cast<std::size_t>(slot)]) {
            ok = false;
            detail = "slot column not a bijection at node " + std::to_string(u);
            return;
          }
          hit[static_cast<std::size_t>(slot)] = true;
          if (keys[k] != key_of(edges_[b + static_cast<std::size_t>(slot)])) {
            ok = false;
            detail = "key does not match resolved edge at node " +
                     std::to_string(u);
            return;
          }
        }
      };
  for (NodeId u = 0; u < n && (port_table_ok || head_table_ok); ++u) {
    const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
    const auto e =
        static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
    if (port_table_ok) {
      check_row_table(
          u, b, e, port_key_, port_slot_,
          [](const Edge& edge) { return edge.port; }, port_table_ok,
          port_table_detail);
    }
    if (head_table_ok) {
      check_row_table(
          u, b, e, head_key_, head_slot_,
          [](const Edge& edge) { return edge.to; }, head_table_ok,
          head_table_detail);
    }
  }
  report.check("port-table-bijection", port_table_ok,
               std::move(port_table_detail));
  report.check("head-table-bijection", head_table_ok,
               std::move(head_table_detail));
}

void Digraph::save_arena(ArenaWriter& w) const {
  w.add("graph/offset", offset_);
  w.add("graph/edges", edges_);
  w.add("graph/arc_head", arc_head_);
  w.add("graph/arc_weight", arc_weight_);
  w.add("graph/port_key", port_key_);
  w.add("graph/port_slot", port_slot_);
  w.add("graph/head_key", head_key_);
  w.add("graph/head_slot", head_slot_);
  SnapshotWriter meta;
  meta.i64(max_weight_);
  w.add_bytes("graph/meta", meta.bytes().data(), meta.size());
}

Digraph Digraph::from_arena(const ArenaView& a) {
  const std::uint64_t n = a.header().node_count;
  const std::uint64_t m = a.header().edge_count;
  Digraph g;
  g.offset_ = a.vec<std::int64_t>("graph/offset", n + 1);
  g.edges_ = a.vec<Edge>("graph/edges", m);
  g.arc_head_ = a.vec<NodeId>("graph/arc_head", m);
  g.arc_weight_ = a.vec<Weight>("graph/arc_weight", m);
  g.port_key_ = a.vec<Port>("graph/port_key", m);
  g.port_slot_ = a.vec<std::int32_t>("graph/port_slot", m);
  g.head_key_ = a.vec<NodeId>("graph/head_key", m);
  g.head_slot_ = a.vec<std::int32_t>("graph/head_slot", m);
  SnapshotReader meta = a.reader("graph/meta");
  g.max_weight_ = meta.i64();
  meta.expect_exhausted("graph/meta");
  if (g.offset_.front() != 0 ||
      g.offset_.back() != static_cast<std::int64_t>(m)) {
    throw SnapshotArenaError(
        "arena: graph/offset endpoints disagree with the header edge count");
  }
  g.arena_ = a.storage();
  return g;
}

Digraph Digraph::reversed() const {
  GraphBuilder rev(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) {
      rev.add_edge(e.to, u, e.weight);
    }
  }
  return rev.freeze();
}

// ------------------------------------------------------------ GraphBuilder --

GraphBuilder::GraphBuilder(NodeId n)
    : out_(static_cast<std::size_t>(n)),
      next_port_(static_cast<std::size_t>(n), 0) {
  if (n < 0) throw std::invalid_argument("GraphBuilder: negative node count");
}

GraphBuilder::GraphBuilder(const Digraph& g)
    : out_(static_cast<std::size_t>(g.node_count())),
      next_port_(static_cast<std::size_t>(g.node_count()), 0),
      edge_count_(g.edge_count()) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = g.out_edges(u);
    out_[static_cast<std::size_t>(u)].assign(row.begin(), row.end());
    for (const Edge& e : row) {
      next_port_[static_cast<std::size_t>(u)] =
          std::max(next_port_[static_cast<std::size_t>(u)],
                   static_cast<Port>(e.port + 1));
    }
  }
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u < 0 || u >= node_count() || v < 0 || v >= node_count()) {
    throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
  }
  if (w < 1) {
    throw std::invalid_argument("GraphBuilder::add_edge: weight must be >= 1");
  }
  if (u == v) throw std::invalid_argument("GraphBuilder::add_edge: self loop");
  auto& edges = out_[static_cast<std::size_t>(u)];
  Port port = next_port_[static_cast<std::size_t>(u)];
  if (port < port_space()) {
    ++next_port_[static_cast<std::size_t>(u)];
  } else {
    // The sequential label would leave the O(n) port namespace (possible
    // after thawing a row whose adversarial port was near 4n-1): fall back
    // to the smallest unused label.  Degree < n << port_space, so one
    // always exists; O(d log d), and only on this rare path.
    std::vector<Port> used;
    used.reserve(edges.size());
    for (const Edge& e : edges) used.push_back(e.port);
    std::sort(used.begin(), used.end());
    port = 0;
    for (const Port taken : used) {
      if (taken != port) break;
      ++port;
    }
  }
  edges.push_back(Edge{v, port, w});
  ++edge_count_;
}

void GraphBuilder::add_edges_with_ports(NodeId u,
                                        const std::vector<Edge>& edges) {
  if (u < 0 || u >= node_count()) {
    throw std::out_of_range(
        "GraphBuilder::add_edges_with_ports: node id out of range");
  }
  auto& out = out_[static_cast<std::size_t>(u)];
  std::vector<Port> ports;
  ports.reserve(out.size() + edges.size());
  for (const Edge& e : out) ports.push_back(e.port);
  const std::int64_t space = port_space();
  for (const Edge& e : edges) {
    if (e.to < 0 || e.to >= node_count()) {
      throw std::out_of_range(
          "GraphBuilder::add_edges_with_ports: node id out of range");
    }
    if (e.to == u) {
      throw std::invalid_argument(
          "GraphBuilder::add_edges_with_ports: self loop");
    }
    if (e.weight < 1) {
      throw std::invalid_argument(
          "GraphBuilder::add_edges_with_ports: weight must be >= 1");
    }
    if (e.port < 0 || e.port >= space) {
      throw std::out_of_range(
          "GraphBuilder::add_edges_with_ports: port out of range");
    }
    ports.push_back(e.port);
  }
  std::sort(ports.begin(), ports.end());
  if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
    throw std::invalid_argument(
        "GraphBuilder::add_edges_with_ports: duplicate port at node " +
        std::to_string(u));
  }
  out.insert(out.end(), edges.begin(), edges.end());
  edge_count_ += static_cast<std::int64_t>(edges.size());
  for (const Edge& e : edges) {
    next_port_[static_cast<std::size_t>(u)] =
        std::max(next_port_[static_cast<std::size_t>(u)],
                 static_cast<Port>(e.port + 1));
  }
}

void GraphBuilder::assign_adversarial_ports(Rng& rng) {
  const std::int64_t space = port_space();
  for (std::size_t u = 0; u < out_.size(); ++u) {
    auto& edges = out_[u];
    // Draw distinct random port numbers for this node's out-edges.
    auto degree = static_cast<std::int32_t>(edges.size());
    if (degree == 0) continue;
    auto labels = rng.sample_without_replacement(
        static_cast<std::int32_t>(space), degree);
    Port next = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      edges[i].port = static_cast<Port>(labels[i]);
      next = std::max(next, static_cast<Port>(edges[i].port + 1));
    }
    next_port_[u] = next;
  }
}

std::int64_t GraphBuilder::port_space() const {
  return 4 * std::max<std::int64_t>(1, node_count());
}

Digraph GraphBuilder::freeze() const {
  const NodeId n = node_count();
  // Build into plain vectors, then freeze them into the Digraph's FlatVec
  // members (owning mode) at the end.
  std::vector<std::int64_t> offset(static_cast<std::size_t>(n) + 1);
  std::vector<Edge> edges;
  std::vector<NodeId> arc_head;
  std::vector<Weight> arc_weight;
  edges.reserve(static_cast<std::size_t>(edge_count_));
  arc_head.reserve(static_cast<std::size_t>(edge_count_));
  arc_weight.reserve(static_cast<std::size_t>(edge_count_));
  std::vector<Port> port_key(static_cast<std::size_t>(edge_count_));
  std::vector<std::int32_t> port_slot(static_cast<std::size_t>(edge_count_));
  std::vector<NodeId> head_key(static_cast<std::size_t>(edge_count_));
  std::vector<std::int32_t> head_slot(static_cast<std::size_t>(edge_count_));
  Weight max_weight = 0;

  std::vector<std::int32_t> order;
  std::int64_t at = 0;
  for (NodeId u = 0; u < n; ++u) {
    offset[static_cast<std::size_t>(u)] = at;
    const auto& row = out_[static_cast<std::size_t>(u)];
    for (const Edge& e : row) {
      edges.push_back(e);
      arc_head.push_back(e.to);
      arc_weight.push_back(e.weight);
      max_weight = std::max(max_weight, e.weight);
    }
    // Resolution tables for this row: slots sorted by port / by head, then
    // the sort keys split out into their own contiguous segments.
    const auto d = static_cast<std::int32_t>(row.size());
    order.resize(static_cast<std::size_t>(d));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&row](std::int32_t a, std::int32_t b) {
      return row[static_cast<std::size_t>(a)].port <
             row[static_cast<std::size_t>(b)].port;
    });
    for (std::int32_t k = 0; k < d; ++k) {
      const auto seg = static_cast<std::size_t>(at) + static_cast<std::size_t>(k);
      port_slot[seg] = order[static_cast<std::size_t>(k)];
      port_key[seg] =
          row[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])].port;
      if (k > 0 && port_key[seg] == port_key[seg - 1]) {
        throw std::invalid_argument(
            "GraphBuilder::freeze: duplicate port at node " + std::to_string(u));
      }
    }
    std::sort(order.begin(), order.end(), [&row](std::int32_t a, std::int32_t b) {
      return row[static_cast<std::size_t>(a)].to <
             row[static_cast<std::size_t>(b)].to;
    });
    for (std::int32_t k = 0; k < d; ++k) {
      const auto seg = static_cast<std::size_t>(at) + static_cast<std::size_t>(k);
      head_slot[seg] = order[static_cast<std::size_t>(k)];
      head_key[seg] =
          row[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])].to;
      if (k > 0 && head_key[seg] == head_key[seg - 1]) {
        throw std::invalid_argument(
            "GraphBuilder::freeze: parallel edge at node " + std::to_string(u));
      }
    }
    at += d;
  }
  offset[static_cast<std::size_t>(n)] = at;

  Digraph g;
  g.offset_ = std::move(offset);
  g.edges_ = std::move(edges);
  g.arc_head_ = std::move(arc_head);
  g.arc_weight_ = std::move(arc_weight);
  g.port_key_ = std::move(port_key);
  g.port_slot_ = std::move(port_slot);
  g.head_key_ = std::move(head_key);
  g.head_slot_ = std::move(head_slot);
  g.max_weight_ = max_weight;
  return g;
}

}  // namespace rtr
