#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

Digraph::Digraph(NodeId n) : out_(static_cast<std::size_t>(n)) {
  if (n < 0) throw std::invalid_argument("Digraph: negative node count");
}

void Digraph::add_edge(NodeId u, NodeId v, Weight w) {
  if (u < 0 || u >= node_count() || v < 0 || v >= node_count()) {
    throw std::out_of_range("Digraph::add_edge: node id out of range");
  }
  if (w < 1) throw std::invalid_argument("Digraph::add_edge: weight must be >= 1");
  if (u == v) throw std::invalid_argument("Digraph::add_edge: self loop");
  auto& edges = out_[static_cast<std::size_t>(u)];
  edges.push_back(Edge{v, w, static_cast<Port>(edges.size())});
  ++edge_count_;
}

void Digraph::add_edges_with_ports(NodeId u, const std::vector<Edge>& edges) {
  if (u < 0 || u >= node_count()) {
    throw std::out_of_range("Digraph::add_edges_with_ports: node id out of range");
  }
  auto& out = out_[static_cast<std::size_t>(u)];
  std::vector<Port> ports;
  ports.reserve(out.size() + edges.size());
  for (const Edge& e : out) ports.push_back(e.port);
  const std::int64_t space = port_space();
  for (const Edge& e : edges) {
    if (e.to < 0 || e.to >= node_count()) {
      throw std::out_of_range("Digraph::add_edges_with_ports: node id out of range");
    }
    if (e.to == u) {
      throw std::invalid_argument("Digraph::add_edges_with_ports: self loop");
    }
    if (e.weight < 1) {
      throw std::invalid_argument(
          "Digraph::add_edges_with_ports: weight must be >= 1");
    }
    if (e.port < 0 || e.port >= space) {
      throw std::out_of_range("Digraph::add_edges_with_ports: port out of range");
    }
    ports.push_back(e.port);
  }
  std::sort(ports.begin(), ports.end());
  if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
    throw std::invalid_argument(
        "Digraph::add_edges_with_ports: duplicate port at node " +
        std::to_string(u));
  }
  out.insert(out.end(), edges.begin(), edges.end());
  edge_count_ += static_cast<std::int64_t>(edges.size());
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  for (const Edge& e : out_edges(u)) {
    if (e.to == v) return true;
  }
  return false;
}

const Edge* Digraph::edge_by_port(NodeId u, Port p) const {
  for (const Edge& e : out_edges(u)) {
    if (e.port == p) return &e;
  }
  return nullptr;
}

Port Digraph::port_of_edge(NodeId u, NodeId v) const {
  for (const Edge& e : out_edges(u)) {
    if (e.to == v) return e.port;
  }
  return kNoPort;
}

std::int64_t Digraph::port_space() const {
  // 4n gives the adversary slack to choose sparse, misleading numbers while
  // staying within the O(n) namespace of Section 1.1.3.
  return 4 * std::max<std::int64_t>(1, node_count());
}

void Digraph::assign_adversarial_ports(Rng& rng) {
  const std::int64_t space = port_space();
  for (auto& edges : out_) {
    // Draw distinct random port numbers for this node's out-edges.
    auto degree = static_cast<std::int32_t>(edges.size());
    if (degree == 0) continue;
    auto labels = rng.sample_without_replacement(
        static_cast<std::int32_t>(space), degree);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      edges[i].port = static_cast<Port>(labels[i]);
    }
  }
}

Digraph Digraph::reversed() const {
  Digraph rev(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) {
      rev.add_edge(e.to, u, e.weight);
    }
  }
  return rev;
}

Weight Digraph::max_weight() const {
  Weight mx = 1;
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) mx = std::max(mx, e.weight);
  }
  return mx;
}

}  // namespace rtr
