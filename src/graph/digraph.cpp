#include "graph/digraph.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace rtr {

// ----------------------------------------------------------------- Digraph --

Digraph::Digraph(NodeId n) {
  if (n < 0) throw std::invalid_argument("Digraph: negative node count");
  offset_.assign(static_cast<std::size_t>(n) + 1, 0);
}

const Edge* Digraph::edge_by_port(NodeId u, Port p) const {
  const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
  const auto e =
      static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
  const auto first = port_key_.begin() + static_cast<std::ptrdiff_t>(b);
  const auto last = port_key_.begin() + static_cast<std::ptrdiff_t>(e);
  const auto it = std::lower_bound(first, last, p);
  if (it == last || *it != p) return nullptr;
  const auto k = static_cast<std::size_t>(it - port_key_.begin());
  return &edges_[b + static_cast<std::size_t>(port_slot_[k])];
}

const Edge* Digraph::edge_by_port_linear(NodeId u, Port p) const {
  for (const Edge& e : out_edges(u)) {
    if (e.port == p) return &e;
  }
  return nullptr;
}

const Edge* Digraph::find_by_head(NodeId u, NodeId v) const {
  const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(u)]);
  const auto e =
      static_cast<std::size_t>(offset_[static_cast<std::size_t>(u) + 1]);
  const auto first = head_key_.begin() + static_cast<std::ptrdiff_t>(b);
  const auto last = head_key_.begin() + static_cast<std::ptrdiff_t>(e);
  const auto it = std::lower_bound(first, last, v);
  if (it == last || *it != v) return nullptr;
  const auto k = static_cast<std::size_t>(it - head_key_.begin());
  return &edges_[b + static_cast<std::size_t>(head_slot_[k])];
}

std::int64_t Digraph::port_space() const {
  // 4n gives the adversary slack to choose sparse, misleading numbers while
  // staying within the O(n) namespace of Section 1.1.3.
  return 4 * std::max<std::int64_t>(1, node_count());
}

Digraph Digraph::reversed() const {
  GraphBuilder rev(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Edge& e : out_edges(u)) {
      rev.add_edge(e.to, u, e.weight);
    }
  }
  return rev.freeze();
}

// ------------------------------------------------------------ GraphBuilder --

GraphBuilder::GraphBuilder(NodeId n)
    : out_(static_cast<std::size_t>(n)),
      next_port_(static_cast<std::size_t>(n), 0) {
  if (n < 0) throw std::invalid_argument("GraphBuilder: negative node count");
}

GraphBuilder::GraphBuilder(const Digraph& g)
    : out_(static_cast<std::size_t>(g.node_count())),
      next_port_(static_cast<std::size_t>(g.node_count()), 0),
      edge_count_(g.edge_count()) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = g.out_edges(u);
    out_[static_cast<std::size_t>(u)].assign(row.begin(), row.end());
    for (const Edge& e : row) {
      next_port_[static_cast<std::size_t>(u)] =
          std::max(next_port_[static_cast<std::size_t>(u)],
                   static_cast<Port>(e.port + 1));
    }
  }
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u < 0 || u >= node_count() || v < 0 || v >= node_count()) {
    throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
  }
  if (w < 1) {
    throw std::invalid_argument("GraphBuilder::add_edge: weight must be >= 1");
  }
  if (u == v) throw std::invalid_argument("GraphBuilder::add_edge: self loop");
  auto& edges = out_[static_cast<std::size_t>(u)];
  Port port = next_port_[static_cast<std::size_t>(u)];
  if (port < port_space()) {
    ++next_port_[static_cast<std::size_t>(u)];
  } else {
    // The sequential label would leave the O(n) port namespace (possible
    // after thawing a row whose adversarial port was near 4n-1): fall back
    // to the smallest unused label.  Degree < n << port_space, so one
    // always exists; O(d log d), and only on this rare path.
    std::vector<Port> used;
    used.reserve(edges.size());
    for (const Edge& e : edges) used.push_back(e.port);
    std::sort(used.begin(), used.end());
    port = 0;
    for (const Port taken : used) {
      if (taken != port) break;
      ++port;
    }
  }
  edges.push_back(Edge{v, w, port});
  ++edge_count_;
}

void GraphBuilder::add_edges_with_ports(NodeId u,
                                        const std::vector<Edge>& edges) {
  if (u < 0 || u >= node_count()) {
    throw std::out_of_range(
        "GraphBuilder::add_edges_with_ports: node id out of range");
  }
  auto& out = out_[static_cast<std::size_t>(u)];
  std::vector<Port> ports;
  ports.reserve(out.size() + edges.size());
  for (const Edge& e : out) ports.push_back(e.port);
  const std::int64_t space = port_space();
  for (const Edge& e : edges) {
    if (e.to < 0 || e.to >= node_count()) {
      throw std::out_of_range(
          "GraphBuilder::add_edges_with_ports: node id out of range");
    }
    if (e.to == u) {
      throw std::invalid_argument(
          "GraphBuilder::add_edges_with_ports: self loop");
    }
    if (e.weight < 1) {
      throw std::invalid_argument(
          "GraphBuilder::add_edges_with_ports: weight must be >= 1");
    }
    if (e.port < 0 || e.port >= space) {
      throw std::out_of_range(
          "GraphBuilder::add_edges_with_ports: port out of range");
    }
    ports.push_back(e.port);
  }
  std::sort(ports.begin(), ports.end());
  if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
    throw std::invalid_argument(
        "GraphBuilder::add_edges_with_ports: duplicate port at node " +
        std::to_string(u));
  }
  out.insert(out.end(), edges.begin(), edges.end());
  edge_count_ += static_cast<std::int64_t>(edges.size());
  for (const Edge& e : edges) {
    next_port_[static_cast<std::size_t>(u)] =
        std::max(next_port_[static_cast<std::size_t>(u)],
                 static_cast<Port>(e.port + 1));
  }
}

void GraphBuilder::assign_adversarial_ports(Rng& rng) {
  const std::int64_t space = port_space();
  for (std::size_t u = 0; u < out_.size(); ++u) {
    auto& edges = out_[u];
    // Draw distinct random port numbers for this node's out-edges.
    auto degree = static_cast<std::int32_t>(edges.size());
    if (degree == 0) continue;
    auto labels = rng.sample_without_replacement(
        static_cast<std::int32_t>(space), degree);
    Port next = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      edges[i].port = static_cast<Port>(labels[i]);
      next = std::max(next, static_cast<Port>(edges[i].port + 1));
    }
    next_port_[u] = next;
  }
}

std::int64_t GraphBuilder::port_space() const {
  return 4 * std::max<std::int64_t>(1, node_count());
}

Digraph GraphBuilder::freeze() const {
  const NodeId n = node_count();
  Digraph g;
  g.offset_.resize(static_cast<std::size_t>(n) + 1);
  g.edges_.reserve(static_cast<std::size_t>(edge_count_));
  g.arc_head_.reserve(static_cast<std::size_t>(edge_count_));
  g.arc_weight_.reserve(static_cast<std::size_t>(edge_count_));
  g.port_key_.resize(static_cast<std::size_t>(edge_count_));
  g.port_slot_.resize(static_cast<std::size_t>(edge_count_));
  g.head_key_.resize(static_cast<std::size_t>(edge_count_));
  g.head_slot_.resize(static_cast<std::size_t>(edge_count_));

  std::vector<std::int32_t> order;
  std::int64_t at = 0;
  for (NodeId u = 0; u < n; ++u) {
    g.offset_[static_cast<std::size_t>(u)] = at;
    const auto& row = out_[static_cast<std::size_t>(u)];
    for (const Edge& e : row) {
      g.edges_.push_back(e);
      g.arc_head_.push_back(e.to);
      g.arc_weight_.push_back(e.weight);
      g.max_weight_ = std::max(g.max_weight_, e.weight);
    }
    // Resolution tables for this row: slots sorted by port / by head, then
    // the sort keys split out into their own contiguous segments.
    const auto d = static_cast<std::int32_t>(row.size());
    order.resize(static_cast<std::size_t>(d));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&row](std::int32_t a, std::int32_t b) {
      return row[static_cast<std::size_t>(a)].port <
             row[static_cast<std::size_t>(b)].port;
    });
    for (std::int32_t k = 0; k < d; ++k) {
      const auto seg = static_cast<std::size_t>(at) + static_cast<std::size_t>(k);
      g.port_slot_[seg] = order[static_cast<std::size_t>(k)];
      g.port_key_[seg] =
          row[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])].port;
      if (k > 0 && g.port_key_[seg] == g.port_key_[seg - 1]) {
        throw std::invalid_argument(
            "GraphBuilder::freeze: duplicate port at node " + std::to_string(u));
      }
    }
    std::sort(order.begin(), order.end(), [&row](std::int32_t a, std::int32_t b) {
      return row[static_cast<std::size_t>(a)].to <
             row[static_cast<std::size_t>(b)].to;
    });
    for (std::int32_t k = 0; k < d; ++k) {
      const auto seg = static_cast<std::size_t>(at) + static_cast<std::size_t>(k);
      g.head_slot_[seg] = order[static_cast<std::size_t>(k)];
      g.head_key_[seg] =
          row[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])].to;
      if (k > 0 && g.head_key_[seg] == g.head_key_[seg - 1]) {
        throw std::invalid_argument(
            "GraphBuilder::freeze: parallel edge at node " + std::to_string(u));
      }
    }
    at += d;
  }
  g.offset_[static_cast<std::size_t>(n)] = at;
  return g;
}

}  // namespace rtr
