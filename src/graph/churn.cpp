#include "graph/churn.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/scc.h"

namespace rtr {

namespace {

struct ProtoEdge {
  NodeId to = kNoNode;
  Weight weight = 0;
  Port port = kNoPort;  // kNoPort: a new/rewired edge with no inherited port
};

/// Per-tail adjacency under construction, with O(1) duplicate suppression
/// (stamp array instead of a per-node hash set).
class ProtoGraph {
 public:
  explicit ProtoGraph(NodeId n)
      : adj_(static_cast<std::size_t>(n)), stamp_(static_cast<std::size_t>(n), -1) {}

  void add(NodeId u, NodeId v, Weight w, Port port = kNoPort) {
    if (u == v) return;
    auto& row = adj_[static_cast<std::size_t>(u)];
    // stamp_[v] == u means "u -> v already present" (stamps are only ever
    // compared against the current tail, so one array serves all tails as
    // long as each tail's edges are added contiguously -- which add() does
    // not require, so probe the row when the stamp misses).
    if (stamp_[static_cast<std::size_t>(v)] == u) return;
    for (const ProtoEdge& e : row) {
      if (e.to == v) return;
    }
    stamp_[static_cast<std::size_t>(v)] = u;
    row.push_back(ProtoEdge{v, w, port});
  }

  // Builds the epoch's GraphBuilder and freezes it: churn only ever mutates
  // builder state; every published epoch is an immutable CSR Digraph.
  [[nodiscard]] Digraph materialize(bool reassign_ports, Rng& rng) const {
    GraphBuilder g(static_cast<NodeId>(adj_.size()));
    if (reassign_ports) {
      for (NodeId u = 0; u < g.node_count(); ++u) {
        for (const ProtoEdge& e : adj_[static_cast<std::size_t>(u)]) {
          g.add_edge(u, e.to, e.weight);
        }
      }
      g.assign_adversarial_ports(rng);
      return g.freeze();
    }
    // Port-stable mode: surviving edges keep their inherited port numbers;
    // new/rewired edges (kNoPort) draw fresh ones that stay unique per tail
    // within the O(n) port space.
    const std::int64_t space = g.port_space();
    std::vector<char> used(static_cast<std::size_t>(space));
    std::vector<Edge> row;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      const auto& proto_row = adj_[static_cast<std::size_t>(u)];
      std::fill(used.begin(), used.end(), 0);
      for (const ProtoEdge& e : proto_row) {
        if (e.port != kNoPort) used[static_cast<std::size_t>(e.port)] = 1;
      }
      row.clear();
      for (const ProtoEdge& e : proto_row) {
        Port port = e.port;
        if (port == kNoPort) {
          do {  // degree << space (4n), so rejection terminates fast
            port = static_cast<Port>(rng.index(space));
          } while (used[static_cast<std::size_t>(port)] != 0);
          used[static_cast<std::size_t>(port)] = 1;
        }
        row.push_back(Edge{e.to, port, e.weight});
      }
      g.add_edges_with_ports(u, row);
    }
    return g.freeze();
  }

 private:
  std::vector<std::vector<ProtoEdge>> adj_;
  std::vector<NodeId> stamp_;
};

Weight draw_weight(const ChurnOptions& opt, Rng& rng) {
  return static_cast<Weight>(1 + rng.index(std::max<Weight>(1, opt.max_weight)));
}

NodeId draw_other(NodeId n, NodeId avoid, Rng& rng) {
  NodeId v;
  do {
    v = static_cast<NodeId>(rng.index(n));
  } while (v == avoid);
  return v;
}

Digraph mutate_once(const Digraph& g, const ChurnOptions& opt, Rng& rng) {
  const NodeId n = g.node_count();
  std::vector<char> rehomed(static_cast<std::size_t>(n), 0);
  if (opt.rehome_nodes > 0) {
    auto leavers = rng.sample_without_replacement(
        n, std::min<NodeId>(opt.rehome_nodes, n));
    for (NodeId v : leavers) rehomed[static_cast<std::size_t>(v)] = 1;
  }

  ProtoGraph proto(n);
  for (NodeId u = 0; u < n; ++u) {
    if (rehomed[static_cast<std::size_t>(u)]) continue;  // adjacency re-drawn below
    for (const Edge& e : g.out_edges(u)) {
      NodeId head = e.to;
      Weight w = e.weight;
      // An edge into a leaver is gone with it; treat it as a forced rewire
      // so the tail keeps its degree.  A rewired circuit is a new circuit:
      // it inherits no port.
      Port port = e.port;
      if (rehomed[static_cast<std::size_t>(head)] || rng.chance(opt.rewire_fraction)) {
        head = draw_other(n, u, rng);
        port = kNoPort;
      }
      if (rng.chance(opt.perturb_fraction)) w = draw_weight(opt, rng);
      proto.add(u, head, w, port);
    }
  }

  // Rejoining nodes: fresh out-links at their old out-degree (min 1) plus a
  // guaranteed in-link, so a leaf rejoin is at least plausibly reachable
  // before the connectivity check has its say.
  for (NodeId u = 0; u < n; ++u) {
    if (!rehomed[static_cast<std::size_t>(u)]) continue;
    const NodeId degree = std::max<NodeId>(1, g.out_degree(u));
    for (NodeId i = 0; i < degree; ++i) {
      proto.add(u, draw_other(n, u, rng), draw_weight(opt, rng));
    }
    proto.add(draw_other(n, u, rng), u, draw_weight(opt, rng));
  }

  return proto.materialize(opt.reassign_ports, rng);
}

/// Adds the missing arcs of a random Hamiltonian cycle, which makes any
/// digraph strongly connected.
Digraph repair_connectivity(const Digraph& g, const ChurnOptions& opt,
                            Rng& rng) {
  const NodeId n = g.node_count();
  ProtoGraph proto(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.out_edges(u)) proto.add(u, e.to, e.weight, e.port);
  }
  const auto cycle = rng.permutation(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = cycle[static_cast<std::size_t>(i)];
    const NodeId v = cycle[static_cast<std::size_t>((i + 1) % n)];
    proto.add(u, v, draw_weight(opt, rng));  // no-op when already present
  }
  return proto.materialize(opt.reassign_ports, rng);
}

}  // namespace

Digraph churn_step(const Digraph& g, const ChurnOptions& opt, Rng& rng) {
  const NodeId n = g.node_count();
  if (n < 2) {
    throw std::invalid_argument("churn_step: need at least 2 nodes");
  }
  for (int attempt = 0; attempt < std::max(1, opt.max_attempts); ++attempt) {
    Digraph next = mutate_once(g, opt, rng);
    if (is_strongly_connected(next)) return next;
  }
  return repair_connectivity(mutate_once(g, opt, rng), opt, rng);
}

Digraph slack_jitter_step(const Digraph& g, double fraction, Rng& rng) {
  const NodeId n = g.node_count();
  if (n < 2) {
    throw std::invalid_argument("slack_jitter_step: need at least 2 nodes");
  }
  std::vector<std::vector<Edge>> rows(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    const auto span = g.out_edges(u);
    rows[static_cast<std::size_t>(u)].assign(span.begin(), span.end());
  }

  // Every strictly slack edge is a candidate: a tail->head detour shorter
  // than the edge itself (d(u, e.to) <= weight - 1, found by a search
  // bounded at weight - 1, so the direct edge is pruned and never counts
  // as its own detour).
  struct Slot {
    NodeId tail;
    std::int32_t index;  // position within the tail's adjacency row
  };
  std::vector<Slot> candidates;
  BoundedDijkstraWorkspace ws;
  std::vector<BoundedReach> reach;
  for (NodeId u = 0; u < n; ++u) {
    const auto& row = rows[static_cast<std::size_t>(u)];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].weight < 2) continue;  // no detour can beat a unit edge
      reach.clear();
      dijkstra_bounded(g, u, row[i].weight - 1, ws, reach);
      for (const BoundedReach& r : reach) {
        if (r.node == row[i].to) {
          candidates.push_back(Slot{u, static_cast<std::int32_t>(i)});
          break;
        }
      }
    }
  }

  // Jitter an exact quota of them (all, when slack edges are scarce).
  struct Jittered {
    Slot slot;
    Weight old_weight;
  };
  std::vector<Jittered> jittered;
  const auto quota = static_cast<std::int32_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(candidates.size()),
      std::llround(fraction * static_cast<double>(g.edge_count()))));
  for (std::int32_t pick : rng.sample_without_replacement(
           static_cast<std::int32_t>(candidates.size()), quota)) {
    const Slot& s = candidates[static_cast<std::size_t>(pick)];
    Edge& e = rows[static_cast<std::size_t>(s.tail)]
                  [static_cast<std::size_t>(s.index)];
    jittered.push_back(Jittered{s, e.weight});
    e.weight = static_cast<Weight>(e.weight + 1 + rng.index(2));
  }

  const auto freeze_rows = [&] {
    GraphBuilder out(n);
    for (NodeId u = 0; u < n; ++u) {
      out.add_edges_with_ports(u, rows[static_cast<std::size_t>(u)]);
    }
    return out.freeze();
  };

  // Detours were certified against g, but a detour path may itself cross
  // another jittered edge and no longer undercut the old weight.  Re-verify
  // every pick against the fully jittered graph and revert the failures:
  // reverting only lowers weights, so the survivors' detours -- already
  // shorter than their bound under the heavier weights -- stay valid, and
  // one pass suffices.
  Digraph next = freeze_rows();
  bool reverted = false;
  for (const Jittered& j : jittered) {
    const Edge& e = rows[static_cast<std::size_t>(j.slot.tail)]
                        [static_cast<std::size_t>(j.slot.index)];
    reach.clear();
    dijkstra_bounded(next, j.slot.tail, j.old_weight - 1, ws, reach);
    bool still_slack = false;
    for (const BoundedReach& r : reach) {
      if (r.node == e.to) {
        still_slack = true;
        break;
      }
    }
    if (!still_slack) {
      rows[static_cast<std::size_t>(j.slot.tail)]
          [static_cast<std::size_t>(j.slot.index)].weight = j.old_weight;
      reverted = true;
    }
  }
  return reverted ? freeze_rows() : next;
}

Digraph add_shadowed_links(const Digraph& g, double fraction, Rng& rng) {
  const NodeId n = g.node_count();
  if (n < 2) {
    throw std::invalid_argument("add_shadowed_links: need at least 2 nodes");
  }
  const auto nn = static_cast<std::size_t>(n);
  std::unordered_set<std::uint64_t> present;
  GraphBuilder out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.out_edges(u)) {
      present.insert(static_cast<std::uint64_t>(u) * nn +
                     static_cast<std::uint64_t>(e.to));
      out.add_edge(u, e.to, e.weight);
    }
  }
  const auto want = static_cast<std::int64_t>(std::llround(
      fraction * static_cast<double>(g.edge_count())));
  DijkstraWorkspace ws;
  std::vector<Dist> dist(nn);
  std::int64_t added = 0;
  // A few random targets per SSSP source amortize the distance computation;
  // collisions with existing pairs just retry on a later source.
  while (added < want) {
    const auto u = static_cast<NodeId>(rng.index(n));
    dijkstra_distances_into(g, u, ws, dist);
    for (int t = 0; t < 8 && added < want; ++t) {
      const auto v = static_cast<NodeId>(rng.index(n));
      if (v == u || dist[static_cast<std::size_t>(v)] >= kInfDist) continue;
      if (!present
               .insert(static_cast<std::uint64_t>(u) * nn +
                       static_cast<std::uint64_t>(v))
               .second) {
        continue;
      }
      const auto w = static_cast<Weight>(dist[static_cast<std::size_t>(v)] +
                                         1 + rng.index(3));
      out.add_edge(u, v, w);
      ++added;
    }
  }
  out.assign_adversarial_ports(rng);
  return out.freeze();
}

}  // namespace rtr
