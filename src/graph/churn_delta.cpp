#include "graph/churn_delta.h"

#include <algorithm>
#include <stdexcept>

namespace rtr {

Weight EdgeChange::min_weight() const {
  if (old_weight == 0) return new_weight;
  if (new_weight == 0) return old_weight;
  return std::min(old_weight, new_weight);
}

bool ChurnDelta::weight_only() const {
  if (!added.empty() || !removed.empty()) return false;
  for (const EdgeChange& e : modified) {
    if (e.old_port != e.new_port) return false;
  }
  return true;
}

double ChurnDelta::fraction() const {
  const auto denom =
      std::max<std::int64_t>({old_edge_count, new_edge_count, 1});
  return static_cast<double>(change_count()) / static_cast<double>(denom);
}

ChurnDelta diff_graphs(const Digraph& old_graph, const Digraph& new_graph) {
  const NodeId n = old_graph.node_count();
  if (n != new_graph.node_count()) {
    throw std::invalid_argument(
        "diff_graphs: node counts differ (churn preserves node ids)");
  }
  ChurnDelta delta;
  delta.old_edge_count = old_graph.edge_count();
  delta.new_edge_count = new_graph.edge_count();

  std::vector<char> touched(static_cast<std::size_t>(n), 0);
  auto touch = [&touched](NodeId u, NodeId v) {
    touched[static_cast<std::size_t>(u)] = 1;
    touched[static_cast<std::size_t>(v)] = 1;
  };
  const auto by_head = [](const Edge& x, const Edge& y) { return x.to < y.to; };

  std::vector<Edge> old_row;
  std::vector<Edge> new_row;
  for (NodeId u = 0; u < n; ++u) {
    const auto old_span = old_graph.out_edges(u);
    const auto new_span = new_graph.out_edges(u);
    old_row.assign(old_span.begin(), old_span.end());
    new_row.assign(new_span.begin(), new_span.end());
    std::sort(old_row.begin(), old_row.end(), by_head);
    std::sort(new_row.begin(), new_row.end(), by_head);

    std::size_t i = 0;
    std::size_t j = 0;
    while (i < old_row.size() || j < new_row.size()) {
      if (j == new_row.size() ||
          (i < old_row.size() && old_row[i].to < new_row[j].to)) {
        const Edge& e = old_row[i++];
        delta.removed.push_back(
            {u, e.to, e.weight, 0, e.port, kNoPort});
        touch(u, e.to);
      } else if (i == old_row.size() || new_row[j].to < old_row[i].to) {
        const Edge& e = new_row[j++];
        delta.added.push_back({u, e.to, 0, e.weight, kNoPort, e.port});
        touch(u, e.to);
      } else {
        const Edge& a = old_row[i++];
        const Edge& b = new_row[j++];
        if (a.weight != b.weight || a.port != b.port) {
          delta.modified.push_back(
              {u, a.to, a.weight, b.weight, a.port, b.port});
          touch(u, a.to);
        }
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (touched[static_cast<std::size_t>(v)] != 0) delta.touched.push_back(v);
  }
  return delta;
}

}  // namespace rtr
