#include "graph/graph_io.h"

#include <sstream>
#include <stdexcept>

namespace rtr {

void write_edge_list(std::ostream& os, const Digraph& g) {
  os << "n " << g.node_count() << "\n";
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.out_edges(u)) {
      os << u << " " << e.to << " " << e.weight << "\n";
    }
  }
}

std::string to_edge_list(const Digraph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

GraphBuilder read_edge_list(std::istream& is) {
  std::string line;
  NodeId n = -1;
  GraphBuilder g(0);
  bool have_header = false;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    if (!have_header) {
      std::string tag;
      if (!(ls >> tag)) continue;  // blank line
      if (tag != "n" || !(ls >> n) || n < 0) {
        throw std::runtime_error("edge list: expected 'n <count>' header at line " +
                                 std::to_string(line_no));
      }
      g = GraphBuilder(n);
      have_header = true;
      continue;
    }
    NodeId u = 0, v = 0;
    Weight w = 0;
    if (!(ls >> u)) continue;  // blank line
    if (!(ls >> v >> w)) {
      throw std::runtime_error("edge list: malformed edge at line " +
                               std::to_string(line_no));
    }
    g.add_edge(u, v, w);
  }
  if (!have_header) throw std::runtime_error("edge list: missing header");
  return g;
}

GraphBuilder from_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

}  // namespace rtr
