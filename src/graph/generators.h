// Synthetic strongly-connected digraph families.
//
// The paper has no system evaluation, so these families are the workloads our
// experiment harness runs the schemes on.  They are chosen to stress the
// quantities the theory cares about:
//
//  * random_strongly_connected -- Erdos-Renyi-style digraphs on a random
//    Hamiltonian backbone; the "typical" case.
//  * one_way_grid              -- planar grid with alternating one-way rows /
//    columns (Manhattan streets): large asymmetry d(u,v) != d(v,u), the
//    regime roundtrip routing exists for.
//  * ring_with_chords          -- one-way ring plus random chords: extreme
//    asymmetry, d(v,u) can be ~n while d(u,v) = 1.
//  * scale_free                -- preferential-attachment digraph over a ring
//    backbone: heavy-tailed degrees stress table-size accounting.
//  * bidirected_random         -- every edge paired with its reverse at equal
//    weight, so d(u,v) = d(v,u); the Section 5 lower-bound regime (the
//    Gavoille-Gengler construction is a bidirected network).
//  * complete_digraph          -- small dense sanity-check family.
//
// All generators return GraphBuilders whose graphs are strongly connected by
// construction and use integer weights in [1, max_weight].  Callers let the
// Section 1.1.3 adversary relabel ports on the builder, then freeze() it
// into the immutable CSR Digraph everything downstream consumes.
#ifndef RTR_GRAPH_GENERATORS_H
#define RTR_GRAPH_GENERATORS_H

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"

namespace rtr {

/// Random digraph: random Hamiltonian cycle (guarantees strong connectivity)
/// plus extra random arcs until average out-degree ~ avg_out_degree.
[[nodiscard]] GraphBuilder random_strongly_connected(NodeId n, double avg_out_degree,
                                                Weight max_weight, Rng& rng);

/// rows x cols one-way torus where row r cycles left-to-right iff r is even
/// and column c cycles top-to-bottom iff c is even (a Manhattan Street
/// Network; odd dimensions are bumped up by one to keep adjacent streets
/// counter-directed).
[[nodiscard]] GraphBuilder one_way_grid(NodeId rows, NodeId cols, Weight max_weight,
                                   Rng& rng);

/// One-way cycle 0 -> 1 -> ... -> n-1 -> 0 plus `chords` random forward arcs.
[[nodiscard]] GraphBuilder ring_with_chords(NodeId n, NodeId chords, Weight max_weight,
                                       Rng& rng);

/// Preferential attachment: ring backbone, then each node adds `attach`
/// out-arcs to endpoints chosen proportionally to current in-degree + 1.
[[nodiscard]] GraphBuilder scale_free(NodeId n, NodeId attach, Weight max_weight,
                                 Rng& rng);

/// Connected random undirected multigraph skeleton (spanning tree + extra
/// edges), each undirected edge emitted as two opposite arcs of equal weight.
/// Guarantees d(u,v) == d(v,u) for all pairs -- the Section 5 regime.
[[nodiscard]] GraphBuilder bidirected_random(NodeId n, double avg_degree,
                                        Weight max_weight, Rng& rng);

/// Dense bidirected gadget in the spirit of the Gavoille-Gengler lower-bound
/// graphs: a bipartite core (n/2 x n/2 random bipartite adjacency, weight-1
/// bidirected edges) plus a weight-2 bidirected matching that keeps the graph
/// connected.  Distances between core vertices are 1 or >= 2 depending on the
/// adjacency bit -- the information-theoretic payload of Theorem 15.
[[nodiscard]] GraphBuilder lower_bound_gadget(NodeId n, double density, Rng& rng);

/// Complete digraph with random weights.
[[nodiscard]] GraphBuilder complete_digraph(NodeId n, Weight max_weight, Rng& rng);

/// Named family dispatch used by parameterized tests and benches.
enum class Family {
  kRandom,
  kGrid,
  kRing,
  kScaleFree,
  kBidirected,
};

[[nodiscard]] std::string family_name(Family f);

/// Builds a member of the family with roughly n nodes (grids round to the
/// nearest even dimensions).
[[nodiscard]] GraphBuilder make_family(Family f, NodeId n, Weight max_weight, Rng& rng);

/// All families, for sweep loops.
[[nodiscard]] const std::vector<Family>& all_families();

}  // namespace rtr

#endif  // RTR_GRAPH_GENERATORS_H
