// The edge-level difference between two epochs' graphs -- the input to the
// incremental repair path (ROADMAP: "Incremental epoch repair under churn").
//
// A ChurnDelta makes the churn explicit as data: which edges appeared,
// disappeared, or changed weight/port between the old and the new frozen
// graph, plus the set W of every node incident to any such edge.  The
// repair oracles (rt/repair_oracle.h) turn W into per-substructure dirty
// bits -- a ball, in-tree, or dictionary row whose radius never reaches a
// changed edge is provably unaffected and can be spliced from the old
// epoch verbatim.
//
// diff_graphs() identifies edges by (tail, head): an edge present in both
// graphs with a different weight or port is "modified" (a port-only change
// still matters -- routing tables store ports, so a relabeled tight edge
// invalidates every table that forwards over it).  The comparison walks the
// per-node head-sorted resolution tables, so it costs O(m log degree)
// regardless of how the new graph was produced.
#ifndef RTR_GRAPH_CHURN_DELTA_H
#define RTR_GRAPH_CHURN_DELTA_H

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace rtr {

/// One changed edge, keyed by (tail, head).  For an added edge the old_
/// fields are unset; for a removed edge the new_ fields are unset.
struct EdgeChange {
  NodeId tail = kNoNode;
  NodeId head = kNoNode;
  Weight old_weight = 0;  ///< 0 when the edge is new
  Weight new_weight = 0;  ///< 0 when the edge was removed
  Port old_port = kNoPort;
  Port new_port = kNoPort;

  /// The weight a soundness check must assume the edge can carry: the
  /// smaller of the two sides (a removed edge only existed at old_weight, an
  /// added edge only at new_weight, a modified edge at either).  An edge is
  /// harmless for a shortest-path structure iff it is strictly slack even at
  /// this weight.
  [[nodiscard]] Weight min_weight() const;
};

/// The full edge diff between two graphs over the same node id set.
struct ChurnDelta {
  std::vector<EdgeChange> added;
  std::vector<EdgeChange> removed;
  std::vector<EdgeChange> modified;
  /// Every node incident (as tail or head) to a changed edge, sorted
  /// ascending, deduplicated.  The repair oracles run one bounded search
  /// per element, so |touched| bounds the oracle cost.
  std::vector<NodeId> touched;

  [[nodiscard]] bool empty() const {
    return added.empty() && removed.empty() && modified.empty();
  }
  /// True when the delta is pure weight re-pricing: no edge appeared,
  /// disappeared, or changed port -- the two graphs share their exact CSR
  /// structure and differ only in the weight array.  This is the shape the
  /// slack fast path (rt/repair_oracle.h: delta_is_strictly_slack) can
  /// certify as globally distance-preserving.
  [[nodiscard]] bool weight_only() const;
  [[nodiscard]] std::int64_t change_count() const {
    return static_cast<std::int64_t>(added.size() + removed.size() +
                                     modified.size());
  }
  /// Changed edges as a fraction of max(old_edges, new_edges, 1) -- the
  /// repair-vs-rebuild policy knob compares against this.
  [[nodiscard]] double fraction() const;

  std::int64_t old_edge_count = 0;
  std::int64_t new_edge_count = 0;
};

/// Computes the (tail, head)-keyed edge diff.  Throws std::invalid_argument
/// when the node counts differ (churn never adds or removes node ids).
[[nodiscard]] ChurnDelta diff_graphs(const Digraph& old_graph,
                                     const Digraph& new_graph);

}  // namespace rtr

#endif  // RTR_GRAPH_CHURN_DELTA_H
