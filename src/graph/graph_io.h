// Plain-text edge-list serialization, so experiments can be dumped and
// replayed, and example programs can ship small literal graphs.
//
// Format:
//   line 1:        "n <node_count>"
//   following:     "<u> <v> <weight>" one edge per line
// Comments start with '#'.  Ports are not serialized: they are the
// adversary's choice, so readers return a GraphBuilder for the caller (or
// BuildContext::for_graph) to relabel and freeze.
#ifndef RTR_GRAPH_GRAPH_IO_H
#define RTR_GRAPH_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "graph/digraph.h"

namespace rtr {

void write_edge_list(std::ostream& os, const Digraph& g);
[[nodiscard]] std::string to_edge_list(const Digraph& g);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] GraphBuilder read_edge_list(std::istream& is);
[[nodiscard]] GraphBuilder from_edge_list(const std::string& text);

}  // namespace rtr

#endif  // RTR_GRAPH_GRAPH_IO_H
