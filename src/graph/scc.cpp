#include "graph/scc.h"

#include <algorithm>
#include <stack>

namespace rtr {

namespace {

// Iterative Tarjan SCC.  An explicit stack frame holds (node, next edge
// index) so deep graphs cannot overflow the call stack.
struct Frame {
  NodeId node;
  std::size_t next_edge;
};

}  // namespace

std::vector<std::int32_t> strongly_connected_components(const Digraph& g) {
  const NodeId n = g.node_count();
  constexpr std::int32_t kUnvisited = -1;
  std::vector<std::int32_t> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<std::int32_t> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> component(static_cast<std::size_t>(n), kUnvisited);
  std::stack<NodeId> tarjan_stack;
  std::int32_t next_index = 0;
  std::int32_t next_component = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    std::stack<Frame> frames;
    frames.push(Frame{root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    tarjan_stack.push(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!frames.empty()) {
      Frame& f = frames.top();
      auto edges = g.out_edges(f.node);
      if (f.next_edge < edges.size()) {
        NodeId w = edges[f.next_edge++].to;
        if (index[static_cast<std::size_t>(w)] == kUnvisited) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] = next_index++;
          tarjan_stack.push(w);
          on_stack[static_cast<std::size_t>(w)] = 1;
          frames.push(Frame{w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.node)] = std::min(
              lowlink[static_cast<std::size_t>(f.node)], index[static_cast<std::size_t>(w)]);
        }
      } else {
        NodeId v = f.node;
        frames.pop();
        if (!frames.empty()) {
          NodeId parent = frames.top().node;
          lowlink[static_cast<std::size_t>(parent)] = std::min(
              lowlink[static_cast<std::size_t>(parent)], lowlink[static_cast<std::size_t>(v)]);
        }
        if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
          while (true) {
            NodeId w = tarjan_stack.top();
            tarjan_stack.pop();
            on_stack[static_cast<std::size_t>(w)] = 0;
            component[static_cast<std::size_t>(w)] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
      }
    }
  }
  return component;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.node_count() == 0) return true;
  auto comp = strongly_connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [&](std::int32_t c) { return c == comp[0]; });
}

bool is_strongly_connected_subgraph(const Digraph& g,
                                    const std::vector<char>& member_mask) {
  // BFS forward and backward from the first member, restricted to members.
  const NodeId n = g.node_count();
  NodeId start = kNoNode;
  NodeId member_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (member_mask[static_cast<std::size_t>(v)]) {
      ++member_count;
      if (start == kNoNode) start = v;
    }
  }
  if (member_count <= 1) return true;

  auto reach = [&](const Digraph& graph) {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::stack<NodeId> todo;
    todo.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    NodeId found = 1;
    while (!todo.empty()) {
      NodeId u = todo.top();
      todo.pop();
      for (const Edge& e : graph.out_edges(u)) {
        if (!member_mask[static_cast<std::size_t>(e.to)]) continue;
        if (seen[static_cast<std::size_t>(e.to)]) continue;
        seen[static_cast<std::size_t>(e.to)] = 1;
        ++found;
        todo.push(e.to);
      }
    }
    return found;
  };

  if (reach(g) != member_count) return false;
  return reach(g.reversed()) == member_count;
}

}  // namespace rtr
