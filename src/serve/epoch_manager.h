// Epoch-based live-churn serving: answer queries continuously while the
// topology changes underneath.
//
// The paper's preprocessing is stop-the-world (Section 1.1.1: tables are
// built, then queried).  A serving system cannot stop: when links re-home
// or costs move, the next epoch's tables must be built WHILE the current
// epoch keeps answering.  The EpochManager does exactly that:
//
//   * One immutable Epoch -- the coherent (graph, scheme, names) triple plus
//     a bound QueryEngine and the epoch's roundtrip metric -- sits behind an
//     atomically-swapped std::shared_ptr.  A query pins its epoch with one
//     shared_ptr copy, so in-flight queries always complete against the
//     triple they started with, even if the epoch is swapped mid-flight
//     (the old epoch dies only when its last query drops the reference).
//   * begin_rebuild(next_topology) preprocesses the next epoch on a
//     background thread: APSP, then the scheme build -- warm-started from
//     the snapshot cache via SchemeRegistry::build_or_load, keyed by
//     (scheme, epoch) -- and finally one atomic store to publish.
//   * Names are FIXED at construction and survive every epoch (the TINN
//     model's whole point): name-keyed sessions never re-resolve addresses.
//     Cached snapshots are validated against the fixed names and the
//     epoch's exact topology (ports included) before they are trusted.
//
// Threading contract: queries (roundtrip_by_name, current(), counters())
// may come from any number of threads at any time.  The control surface
// (begin_rebuild / wait_for_rebuild / rebuild_now / destruction) must be
// driven from one thread at a time.
#ifndef RTR_SERVE_EPOCH_MANAGER_H
#define RTR_SERVE_EPOCH_MANAGER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/names.h"
#include "graph/digraph.h"
#include "net/query_engine.h"
#include "net/scheme.h"
#include "rt/metric.h"

namespace rtr {

struct ChurnDelta;  // graph/churn_delta.h

/// One served epoch: an immutable, internally consistent snapshot of the
/// world.  Everything a query touches hangs off this object, so holding the
/// shared_ptr is all the coherence a reader needs.
struct Epoch {
  Epoch(std::uint64_t seq_, SchemeHandle handle_,
        std::shared_ptr<const RoundtripMetric> metric_,
        std::shared_ptr<const QueryEngine> engine_, bool from_cache,
        double build_seconds_)
      : seq(seq_),
        handle(std::move(handle_)),
        metric(std::move(metric_)),
        engine(std::move(engine_)),
        loaded_from_cache(from_cache),
        build_seconds(build_seconds_) {}

  std::uint64_t seq;                              ///< 0 for the initial epoch
  SchemeHandle handle;                            ///< graph + names + scheme
  std::shared_ptr<const RoundtripMetric> metric;  ///< this epoch's r(u,v)
  std::shared_ptr<const QueryEngine> engine;      ///< batch serving interface
  bool loaded_from_cache;   ///< warm-started from a snapshot (APSP still paid)
  double build_seconds;     ///< wall time to preprocess this epoch
};

struct EpochManagerOptions {
  /// Directory for per-epoch snapshot warm-start files; empty disables the
  /// cache (every epoch builds from scratch).  An unwritable directory
  /// degrades to build-without-save -- it never takes down serving.
  std::string cache_dir;
  /// QueryEngine pool width per epoch; 0 = hardware concurrency.
  int query_threads = 0;
  /// Scheme randomness: epoch k builds with Rng(scheme_seed + k) -- except
  /// under enable_repair, where every epoch builds with Rng(scheme_seed) so
  /// the center draw is reproducible across epochs (the precondition for
  /// the incremental repair splice).
  std::uint64_t scheme_seed = 1;
  SimOptions sim;
  /// Metric backend per epoch: kAuto switches from the dense APSP matrix to
  /// bounded-Dijkstra sparse rows past kDenseMetricAutoThreshold nodes.
  MetricMode metric_mode = MetricMode::kAuto;
  /// Warm-start epochs by mmap'ing cached v2 arena snapshots in place
  /// (O(ms) at any n, payload CRCs unverified) instead of decoding them
  /// into owning buffers.  v1 or damaged cache files silently fall back to
  /// the owned load, then to a rebuild.  Requires cache_dir.
  bool mapped_snapshots = false;
  /// When non-empty (and the snapshot cache is enabled), every epoch's
  /// snapshot is also published to POSIX shared memory as
  /// "<shm_prefix>_epoch<seq>", so sibling processes on this host can
  /// attach zero-copy read-only serving views via map_snapshot_shm()
  /// without touching the filesystem.  Publish failures degrade to
  /// file-only distribution; published objects are unlinked when the
  /// manager is destroyed.
  std::string shm_prefix;
  /// Incremental epoch repair (ROADMAP: O(affected region) rebuilds under
  /// churn).  When true, begin_rebuild diffs the incoming topology against
  /// the current epoch's graph: an empty delta is a no-op (the current
  /// epoch keeps serving, seq unchanged); a delta changing at most
  /// repair_max_fraction of the edges is routed through
  /// SchemeRegistry::repair() -- O(affected region) instead of a full
  /// preprocess, with automatic fallback to a full build when the scheme
  /// declines; anything larger rebuilds from scratch.  Repair preserves the
  /// rebuild contract exactly (identical routes, stats, and snapshot
  /// bytes), which is why it also PINS the scheme seed (see scheme_seed).
  /// Repaired epochs skip the snapshot cache and shm publication: they are
  /// transient by design, and a crash recovers from the last full build.
  bool enable_repair = false;
  /// Deltas changing more than this fraction of max(old, new) edges always
  /// rebuild from scratch (repair cost approaches a rebuild long before 1).
  double repair_max_fraction = 0.05;
};

class EpochManager {
 public:
  /// Builds epoch 0 synchronously (a manager is always ready to serve).
  /// `names` is fixed for the manager's lifetime.  Throws if the initial
  /// graph is not strongly connected or does not match the naming.
  EpochManager(std::string scheme_name, NameAssignment names, Digraph initial,
               EpochManagerOptions options = {},
               const SchemeRegistry& registry = SchemeRegistry::global());
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The current epoch; never null.  Copy the shared_ptr once, then run any
  /// number of queries against it -- the triple cannot change under you.
  ///
  /// Implementation note: the free-function atomic shared_ptr API is used
  /// instead of std::atomic<std::shared_ptr> because libstdc++'s _Sp_atomic
  /// (GCC 12) releases its embedded spinlock with a relaxed fetch_sub on the
  /// reader side, which ThreadSanitizer correctly reports as a data race
  /// under the abstract memory model; the free functions go through a real
  /// mutex pool and keep the TSAN CI job meaningful for OUR swap logic.
  [[nodiscard]] std::shared_ptr<const Epoch> current() const {
    return std::atomic_load_explicit(&current_, std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t epoch() const { return current()->seq; }
  [[nodiscard]] const std::string& scheme_name() const { return scheme_name_; }
  /// The fixed, topology-independent naming (identical in every epoch).
  [[nodiscard]] const NameAssignment& names() const { return names_; }

  /// Starts preprocessing `next` as epoch current+1 on a background thread;
  /// the swap happens automatically when the build completes.  Returns false
  /// (and does nothing) when a rebuild is already in flight.  Build failures
  /// (e.g. a disconnected graph) leave the current epoch serving and are
  /// reported by last_error().
  bool begin_rebuild(Digraph next);

  /// Blocks until the in-flight rebuild (if any) has published or failed.
  void wait_for_rebuild();

  [[nodiscard]] bool rebuild_in_flight() const {
    return rebuild_in_flight_.load(std::memory_order_acquire);
  }

  /// Synchronous convenience: begin_rebuild + wait_for_rebuild, throwing on
  /// build failure.
  void rebuild_now(Digraph next);

  /// Message of the most recent failed rebuild ("" when none).
  [[nodiscard]] std::string last_error() const;

  /// One roundtrip keyed by TINN names -- the session-facing API.  Pins the
  /// current epoch for the whole query and never throws: unknown names come
  /// back kInvalidName, everything else carries the QueryEngine's typed code,
  /// and `result.epoch` records which epoch answered.  Failures of any kind
  /// still increment the failure counter.
  [[nodiscard]] ServingResult roundtrip_by_name(NodeName src,
                                                NodeName dst) const;

  struct Counters {
    std::uint64_t queries = 0;       ///< roundtrip_by_name calls served
    std::uint64_t failures = 0;      ///< of those, not delivered
    std::uint64_t epochs_built = 0;  ///< successful rebuilds (excl. epoch 0)
    std::uint64_t cache_hits = 0;    ///< epochs warm-started from snapshots
    std::uint64_t shm_published = 0;  ///< epochs posted to shared memory
    std::uint64_t repairs = 0;  ///< epochs published via incremental repair
    /// Non-empty deltas that went through a full build despite repair being
    /// enabled: over repair_max_fraction, declined by the scheme's hook, or
    /// a failed repair attempt.
    std::uint64_t repair_fallbacks = 0;
    /// Wall ms of the most recent background epoch preprocess (repair or
    /// full build; 0 until the first rebuild completes).
    double last_rebuild_ms = 0.0;
    /// Wall ms of the most recent successful incremental repair (0 until
    /// one completes).
    double last_repair_ms = 0.0;
  };
  [[nodiscard]] Counters counters() const;

  /// Shared-memory object name epoch `seq` is (or would be) published
  /// under: "<shm_prefix>_epoch<seq>".  Sibling processes pass this to
  /// map_snapshot_shm().
  [[nodiscard]] std::string shm_name_for(std::uint64_t seq) const {
    return options_.shm_prefix + "_epoch" + std::to_string(seq);
  }

 private:
  [[nodiscard]] std::shared_ptr<const Epoch> build_epoch(
      std::uint64_t seq, std::shared_ptr<const Digraph> graph);

  /// Attempts an incremental repair of `base` onto `graph`; nullptr means
  /// the scheme declined or failed and the caller falls back to a full
  /// build.  `start` anchors the epoch's build_seconds so the published
  /// timing covers the whole background preprocess, diff included.
  [[nodiscard]] std::shared_ptr<const Epoch> repair_epoch(
      std::uint64_t seq, const Epoch& base,
      std::shared_ptr<const Digraph> graph, const ChurnDelta& delta,
      std::chrono::steady_clock::time_point start);

  /// Best-effort shm publication of the epoch's snapshot file; records the
  /// object name for unlinking at destruction.  Never throws.
  void publish_epoch_shm(std::uint64_t seq, const std::string& path);

  std::string scheme_name_;
  NameAssignment names_;
  EpochManagerOptions options_;
  const SchemeRegistry& registry_;

  std::shared_ptr<const Epoch> current_;  // accessed via std::atomic_* only
  std::thread rebuild_thread_;  // control-thread owned
  std::atomic<bool> rebuild_in_flight_{false};

  mutable std::mutex error_mutex_;
  std::string last_error_;

  std::mutex shm_mutex_;
  std::vector<std::string> shm_published_;  ///< unlinked at destruction

  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> epochs_built_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> shm_published_count_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> repair_fallbacks_{0};
  std::atomic<double> last_rebuild_ms_{0.0};
  std::atomic<double> last_repair_ms_{0.0};
};

}  // namespace rtr

#endif  // RTR_SERVE_EPOCH_MANAGER_H
