#include "serve/churn_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

namespace rtr {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ChurnRunResult run_churn_workload(Digraph initial, NameAssignment names,
                                  const ChurnRunOptions& options) {
  const auto run_start = std::chrono::steady_clock::now();
  const NodeId n = initial.node_count();
  Digraph g = std::move(initial);
  EpochManager mgr(options.scheme, std::move(names), Digraph(g),
                   options.manager);

  // Client threads hammering name-keyed roundtrips for the whole run; the
  // control flow below churns the topology underneath them.
  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  const int workers = std::max(1, options.hammer_threads);
  hammers.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    hammers.emplace_back([&mgr, &stop, n, &options, w] {
      Rng rng(options.seed + 100 + static_cast<std::uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        auto a = static_cast<NodeName>(rng.index(n));
        auto b = static_cast<NodeName>(rng.index(n));
        if (a == b) continue;
        (void)mgr.roundtrip_by_name(a, b);
      }
    });
  }

  ChurnRunResult result;
  const std::int64_t stretch_pairs = std::min<std::int64_t>(
      options.stretch_pairs, static_cast<std::int64_t>(n) * (n - 1));
  std::string epoch_rows;
  // Per-epoch stretch continuity: a deterministic sampled batch against each
  // epoch as it becomes current.
  auto append_epoch_row = [&](const Epoch& epoch, double rebuild_seconds,
                              std::uint64_t served_during) {
    BatchOptions stretch_opts;
    stretch_opts.pair_budget = stretch_pairs;
    stretch_opts.seed = options.seed + 2;
    StretchReport rep = epoch.engine->run_sampled(stretch_opts);
    result.stretch_failures += rep.failures;
    if (result.first_error.empty()) result.first_error = rep.first_error;
    if (result.stretch_pairs == 0) {
      // Keep the epoch-0 batch as the run's headline stretch figures.
      result.stretch_pairs = rep.pairs;
      result.mean_stretch = rep.mean_stretch;
      result.p99_stretch = rep.p99_stretch;
      result.max_stretch = rep.max_stretch;
    }
    if (!epoch_rows.empty()) epoch_rows += ',';
    epoch_rows += "{\"epoch\":" + std::to_string(epoch.seq) +
                  ",\"pairs\":" + std::to_string(rep.pairs) +
                  ",\"failures\":" + std::to_string(rep.failures) +
                  ",\"mean_stretch\":" + std::to_string(rep.mean_stretch) +
                  ",\"p99_stretch\":" + std::to_string(rep.p99_stretch) +
                  ",\"max_stretch\":" + std::to_string(rep.max_stretch) +
                  ",\"rebuild_seconds\":" + std::to_string(rebuild_seconds) +
                  ",\"served_during_rebuild\":" +
                  std::to_string(served_during) + ",\"from_cache\":" +
                  (epoch.loaded_from_cache ? "true" : "false") + "}";
  };
  append_epoch_row(*mgr.current(), mgr.current()->build_seconds, 0);

  Rng churn_rng(options.seed + 3);
  for (int e = 0; e < options.epochs; ++e) {
    g = churn_step(g, options.churn, churn_rng);
    const auto before = mgr.counters();
    const auto start = std::chrono::steady_clock::now();
    if (!mgr.begin_rebuild(Digraph(g))) {
      result.last_error = "rebuild unexpectedly in flight";
      break;
    }
    mgr.wait_for_rebuild();
    const double rebuild_seconds = seconds_since(start);
    result.last_error = mgr.last_error();
    if (!result.last_error.empty()) break;
    const std::uint64_t served = mgr.counters().queries - before.queries;
    result.served_during_rebuilds += served;
    append_epoch_row(*mgr.current(), rebuild_seconds, served);
  }

  stop.store(true);
  for (auto& t : hammers) t.join();

  const auto c = mgr.counters();
  result.wall_seconds = seconds_since(run_start);
  result.queries = c.queries;
  result.failures = c.failures;
  result.epochs_completed = mgr.epoch();
  result.repairs = c.repairs;
  result.repair_fallbacks = c.repair_fallbacks;
  result.last_rebuild_ms = c.last_rebuild_ms;
  result.last_repair_ms = c.last_repair_ms;
  result.availability =
      c.queries > 0
          ? 1.0 - static_cast<double>(c.failures) / static_cast<double>(c.queries)
          : 1.0;
  result.json =
      "{\"scheme\":\"" + options.scheme + "\"," + options.extra_json_fields +
      "\"n\":" + std::to_string(n) +
      ",\"epochs\":" + std::to_string(result.epochs_completed) +
      ",\"query_threads\":" + std::to_string(workers) +
      ",\"queries\":" + std::to_string(result.queries) +
      ",\"failures\":" + std::to_string(result.failures) +
      ",\"served_during_rebuilds\":" +
      std::to_string(result.served_during_rebuilds) +
      ",\"availability\":" + std::to_string(result.availability) +
      ",\"stretch_batch_failures\":" + std::to_string(result.stretch_failures) +
      ",\"repairs\":" + std::to_string(result.repairs) +
      ",\"repair_fallbacks\":" + std::to_string(result.repair_fallbacks) +
      ",\"last_rebuild_ms\":" + std::to_string(result.last_rebuild_ms) +
      ",\"last_repair_ms\":" + std::to_string(result.last_repair_ms) +
      ",\"last_error\":\"" + json_escape(result.last_error) +
      "\",\"per_epoch\":[" + epoch_rows + "]}";
  return result;
}

}  // namespace rtr
