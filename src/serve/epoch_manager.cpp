#include "serve/epoch_manager.h"

#include <chrono>
#include <stdexcept>

#include "graph/churn_delta.h"
#include "io/snapshot.h"

namespace rtr {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Exact topology equality, ports included.  A cached snapshot is only
/// trustworthy for an epoch if its frozen graph is THIS epoch's graph: the
/// tables store port numbers, and the stretch denominators come from the
/// epoch's own metric.
bool same_topology(const Digraph& a, const Digraph& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  for (NodeId u = 0; u < a.node_count(); ++u) {
    const auto ea = a.out_edges(u);
    const auto eb = b.out_edges(u);
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].to != eb[i].to || ea[i].weight != eb[i].weight ||
          ea[i].port != eb[i].port) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

EpochManager::EpochManager(std::string scheme_name, NameAssignment names,
                           Digraph initial, EpochManagerOptions options,
                           const SchemeRegistry& registry)
    : scheme_name_(std::move(scheme_name)),
      names_(std::move(names)),
      options_(std::move(options)),
      registry_(registry) {
  if (names_.node_count() != initial.node_count()) {
    throw std::invalid_argument(
        "EpochManager: names do not match the initial graph");
  }
  std::atomic_store_explicit(
      &current_,
      build_epoch(0, std::make_shared<const Digraph>(std::move(initial))),
      std::memory_order_release);
}

EpochManager::~EpochManager() {
  wait_for_rebuild();
  // Published shm objects outlive attached mappings (POSIX keeps the pages
  // until the last unmap), so unlinking here never yanks an epoch out from
  // under a sibling process -- it only removes the names.
  for (const std::string& name : shm_published_) {
    unlink_arena_shm(name);
  }
}

std::shared_ptr<const Epoch> EpochManager::build_epoch(
    std::uint64_t seq, std::shared_ptr<const Digraph> graph) {
  const auto start = std::chrono::steady_clock::now();
  // APSP is paid per epoch regardless of the snapshot cache: the metric is
  // not part of the frozen artifact (stretch denominators are measurement
  // state, not routing state).
  std::shared_ptr<const RoundtripMetric> metric =
      make_roundtrip_metric(graph, options_.metric_mode);
  // Under repair the seed is pinned so every epoch draws the same centers;
  // without it epochs stay independently randomized as before.
  const std::uint64_t seed = options_.enable_repair
                                 ? options_.scheme_seed
                                 : options_.scheme_seed + seq;
  BuildContext ctx = BuildContext::wrap(graph, metric, names_, seed);

  bool from_cache = false;
  std::unique_ptr<SchemeHandle> handle;
  if (!options_.cache_dir.empty() &&
      registry_.snapshot_supported(scheme_name_)) {
    const std::string path = options_.cache_dir + "/" + scheme_name_ +
                             "_epoch" + std::to_string(seq) + ".rtrsnap";
    const auto mode = options_.mapped_snapshots
                          ? SchemeRegistry::SnapshotLoadMode::kMapped
                          : SchemeRegistry::SnapshotLoadMode::kOwned;
    SchemeHandle cached = registry_.build_or_load(scheme_name_, ctx, path, mode);
    // Pointer identity tells a load from a build: the build leg hands back
    // the ctx graph itself, a load materializes its own from the file.
    from_cache = cached.graph_ptr() != graph;
    // Trust the cache only if it froze exactly this epoch: same fixed
    // naming, same topology down to the adversary's port numbers.  A stale
    // file (e.g. a reused cache_dir from a different churn sequence) is
    // rebuilt over.
    if (!from_cache || (cached.names().names() == names_.names() &&
                        same_topology(cached.graph(), *graph))) {
      handle = std::make_unique<SchemeHandle>(std::move(cached));
    } else {
      from_cache = false;
      handle = std::make_unique<SchemeHandle>(
          graph, names_, registry_.build(scheme_name_, ctx));
      try {
        save_snapshot(path, scheme_name_, *handle, registry_);
      } catch (const SnapshotError& e) {
        // Same degradation contract as build_or_load: serving wins.
        warn_snapshot_cache_save_failed_once("EpochManager", e);
      }
    }
    if (!options_.shm_prefix.empty()) publish_epoch_shm(seq, path);
  } else {
    handle = std::make_unique<SchemeHandle>(graph, names_,
                                            registry_.build(scheme_name_, ctx));
  }
  if (from_cache) cache_hits_.fetch_add(1, std::memory_order_relaxed);

  QueryEngineOptions qopts;
  qopts.threads = options_.query_threads;
  qopts.sim = options_.sim;
  auto engine = std::make_shared<const QueryEngine>(
      handle->graph_ptr(), metric, names_, handle->scheme_ptr(), qopts);
  return std::make_shared<const Epoch>(seq, std::move(*handle),
                                       std::move(metric), std::move(engine),
                                       from_cache, seconds_since(start));
}

void EpochManager::publish_epoch_shm(std::uint64_t seq,
                                     const std::string& path) {
  const std::string shm_name = shm_name_for(seq);
  try {
    publish_snapshot_shm(path, shm_name);
  } catch (const std::exception&) {
    // No shm on this host, a v1 cache file, or a failed save upstream:
    // sibling processes fall back to the snapshot file.  Serving wins.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(shm_mutex_);
    shm_published_.push_back(shm_name);
  }
  shm_published_count_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const Epoch> EpochManager::repair_epoch(
    std::uint64_t seq, const Epoch& base,
    std::shared_ptr<const Digraph> graph, const ChurnDelta& delta,
    std::chrono::steady_clock::time_point start) {
  // The repair path's headline saving over a full build: a lazy sparse
  // metric instead of the dense APSP.  Both backends return identical
  // r(u, v) values (pinned by tests), so the served stretch figures and the
  // repaired scheme's bytes cannot depend on this choice.
  std::shared_ptr<const RoundtripMetric> metric =
      make_roundtrip_metric(graph, MetricMode::kSparse);
  BuildContext ctx =
      BuildContext::wrap(graph, metric, names_, options_.scheme_seed);
  std::shared_ptr<const Scheme> scheme;
  try {
    scheme = registry_.repair(scheme_name_, base.handle.scheme(),
                              base.handle.graph(), ctx, delta);
  } catch (const std::exception&) {
    // A failed repair (including a failed RTR_AUDIT_ON_BUILD audit) is a
    // fallback, never an outage: the counters expose it, the full build
    // supplies the epoch.
    scheme = nullptr;
  }
  if (scheme == nullptr) return nullptr;
  // Repaired epochs deliberately skip the snapshot cache and shm: they are
  // transient, and recovery after a crash replays from the last full build.
  SchemeHandle handle(graph, names_, scheme);
  QueryEngineOptions qopts;
  qopts.threads = options_.query_threads;
  qopts.sim = options_.sim;
  auto engine = std::make_shared<const QueryEngine>(graph, metric, names_,
                                                    scheme, qopts);
  return std::make_shared<const Epoch>(seq, std::move(handle),
                                       std::move(metric), std::move(engine),
                                       false, seconds_since(start));
}

bool EpochManager::begin_rebuild(Digraph next) {
  if (rebuild_in_flight_.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  if (rebuild_thread_.joinable()) rebuild_thread_.join();  // previous, done
  const std::shared_ptr<const Epoch> base = current();
  const std::uint64_t seq = base->seq + 1;
  rebuild_thread_ = std::thread([this, seq, base,
                                 g = std::move(next)]() mutable {
    const auto start = std::chrono::steady_clock::now();
    try {
      std::shared_ptr<const Epoch> epoch;
      bool noop = false;
      bool repaired = false;
      if (options_.enable_repair) {
        bool have_delta = false;
        ChurnDelta delta;
        try {
          delta = diff_graphs(base->handle.graph(), g);
          have_delta = true;
        } catch (const std::exception&) {
          have_delta = false;  // node count changed: always a full build
        }
        if (have_delta && delta.empty()) {
          // Identical topology: publishing a new epoch would only churn
          // caches and sessions.  Keep serving the same epoch object.
          noop = true;
        } else if (have_delta) {
          if (delta.fraction() <= options_.repair_max_fraction) {
            auto graph = std::make_shared<const Digraph>(std::move(g));
            epoch = repair_epoch(seq, *base, graph, delta, start);
            if (epoch != nullptr) {
              repaired = true;
            } else {
              repair_fallbacks_.fetch_add(1, std::memory_order_relaxed);
              epoch = build_epoch(seq, std::move(graph));
            }
          } else {
            repair_fallbacks_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (!noop) {
        if (epoch == nullptr) {
          epoch =
              build_epoch(seq, std::make_shared<const Digraph>(std::move(g)));
        }
        std::atomic_store_explicit(&current_, std::move(epoch),
                                   std::memory_order_release);
        epochs_built_.fetch_add(1, std::memory_order_relaxed);
        if (repaired) repairs_.fetch_add(1, std::memory_order_relaxed);
        const double ms = seconds_since(start) * 1000.0;
        last_rebuild_ms_.store(ms, std::memory_order_relaxed);
        if (repaired) last_repair_ms_.store(ms, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(error_mutex_);
      last_error_.clear();
    } catch (const std::exception& e) {
      // The current epoch keeps serving; the operator reads last_error().
      std::lock_guard<std::mutex> lock(error_mutex_);
      last_error_ = e.what();
    }
    rebuild_in_flight_.store(false, std::memory_order_release);
  });
  return true;
}

void EpochManager::wait_for_rebuild() {
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

void EpochManager::rebuild_now(Digraph next) {
  if (!begin_rebuild(std::move(next))) {
    throw std::logic_error("EpochManager::rebuild_now: rebuild in flight");
  }
  wait_for_rebuild();
  const std::string err = last_error();
  if (!err.empty()) {
    throw std::runtime_error("EpochManager::rebuild_now: " + err);
  }
}

std::string EpochManager::last_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return last_error_;
}

ServingResult EpochManager::roundtrip_by_name(NodeName src,
                                              NodeName dst) const {
  // One shared_ptr copy pins the whole (graph, scheme, names) triple: the
  // query below cannot observe a swap, and the epoch cannot be destroyed
  // until the copy goes out of scope.
  const std::shared_ptr<const Epoch> epoch = current();
  queries_.fetch_add(1, std::memory_order_relaxed);
  const NodeName n = names_.node_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    // Unknown name: the caller's data, reported typed -- never a throw into
    // a client thread (the old path threw out_of_range here) and never a
    // swallowed count the caller cannot interpret.
    failures_.fetch_add(1, std::memory_order_relaxed);
    return ServingResult::failure(
        ServingError::kInvalidName,
        "unknown name " + std::to_string(src < 0 || src >= n ? src : dst),
        epoch->seq);
  }
  ServingResult res = epoch->engine->serve(names_.id_of(src), names_.id_of(dst));
  res.epoch = epoch->seq;
  if (!res.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return res;
}

EpochManager::Counters EpochManager::counters() const {
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  c.epochs_built = epochs_built_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  c.shm_published = shm_published_count_.load(std::memory_order_relaxed);
  c.repairs = repairs_.load(std::memory_order_relaxed);
  c.repair_fallbacks = repair_fallbacks_.load(std::memory_order_relaxed);
  c.last_rebuild_ms = last_rebuild_ms_.load(std::memory_order_relaxed);
  c.last_repair_ms = last_repair_ms_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace rtr
