// Shared driver for the live-churn serving workload.
//
// `rtr_cli churn` and bench/churn_serving.cpp run the same experiment --
// hammer threads issuing name-keyed roundtrips nonstop while the control
// thread churns the topology through background epoch rebuilds, with a
// deterministic sampled stretch batch against each epoch as it becomes
// current.  This harness is that experiment, once, so the two front ends
// cannot drift; they differ only in how they pick parameters and what they
// wrap around the JSON row.
#ifndef RTR_SERVE_CHURN_HARNESS_H
#define RTR_SERVE_CHURN_HARNESS_H

#include <cstdint>
#include <string>

#include "core/names.h"
#include "graph/churn.h"
#include "graph/digraph.h"
#include "serve/epoch_manager.h"

namespace rtr {

/// Minimal JSON string escaping for messages embedded in report rows.
[[nodiscard]] std::string json_escape(const std::string& s);

struct ChurnRunOptions {
  std::string scheme = "stretch6";
  int epochs = 3;          ///< background rebuilds after epoch 0
  int hammer_threads = 4;  ///< client threads querying nonstop
  std::uint64_t seed = 1;  ///< hammer traffic + stretch batch + churn draws
  /// Budget for the per-epoch stretch-continuity batch (clamped to n(n-1)).
  std::int64_t stretch_pairs = 2000;
  ChurnOptions churn;                  ///< per-step topology mutation
  EpochManagerOptions manager;         ///< cache_dir, engine threads, ...
  /// Extra JSON fields spliced verbatim after "scheme" (e.g.
  /// "\"family\":\"random\","); must end with a comma when non-empty.
  std::string extra_json_fields;
};

struct ChurnRunResult {
  std::string json;          ///< the one-line report row
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;           ///< hammer roundtrips not delivered
  std::int64_t stretch_failures = 0;    ///< failures across the epoch batches
  std::uint64_t epochs_completed = 0;   ///< rebuilds that published
  std::uint64_t served_during_rebuilds = 0;
  double availability = 1.0;
  double wall_seconds = 0;             ///< whole-run serving wall time
  /// Epoch-0 deterministic stretch batch (the BENCH-schema cell the bench
  /// front end records).
  std::int64_t stretch_pairs = 0;
  double mean_stretch = 0;
  double p99_stretch = 0;
  double max_stretch = 0;
  std::string first_error;  ///< earliest stretch-batch error message
  std::string last_error;   ///< rebuild failure, "" when none
  /// Incremental-repair accounting (all zero unless the manager options
  /// enabled repair): epochs published via SchemeRegistry::repair(),
  /// non-empty deltas that fell back to a full build, and the wall ms of
  /// the most recent full/background preprocess and successful repair.
  std::uint64_t repairs = 0;
  std::uint64_t repair_fallbacks = 0;
  double last_rebuild_ms = 0;
  double last_repair_ms = 0;

  /// The acceptance bar: every rebuild published and nothing ever failed.
  [[nodiscard]] bool ok(int expected_epochs) const {
    return failures == 0 && stretch_failures == 0 && last_error.empty() &&
           epochs_completed == static_cast<std::uint64_t>(expected_epochs);
  }
};

/// Runs the workload over `initial` with the fixed `names`.  Blocks until
/// all epochs are published (or a rebuild fails) and the hammers are joined.
[[nodiscard]] ChurnRunResult run_churn_workload(Digraph initial,
                                                NameAssignment names,
                                                const ChurnRunOptions& options);

}  // namespace rtr

#endif  // RTR_SERVE_CHURN_HARNESS_H
