// E9 -- Section 4.3 / Figs. 9, 10, 11: the polynomial tradeoff scheme.
//
// Sweeps k; reports realized stretch against 8k^2 + 4k - 4 and the table
// scaling against O~(k^2 n^{2/k} log RTDiam).
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/polystretch.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E9", "Sec. 4.3, Figs. 9/10/11",
               "PolynomialStretch: measured stretch vs 8k^2+4k-4; tables vs "
               "O~(k^2 n^{2/k} log RTDiam).");

  TextTable table({"n", "k", "mean", "p99", "max", "bound", "tbl entries",
                   "k^2 n^{2/k} logD", "hdr bits", "fail"});
  for (NodeId n : {96, 192}) {
    for (int k : {2, 3, 4}) {
      ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 800 + n + k);
      PolyStretchScheme::Options opts;
      opts.k = k;
      PolyStretchScheme scheme(inst.graph(), *inst.metric, inst.names, opts);
      StretchReport rep = measure_stretch(inst, scheme, 4000, n + k);
      const double logd =
          std::log2(static_cast<double>(inst.metric->rt_diameter()) + 2);
      table.add_row(
          {fmt_int(inst.n()), fmt_int(k), fmt_double(rep.mean_stretch),
           fmt_double(rep.p99_stretch), fmt_double(rep.max_stretch),
           fmt_double(scheme.stretch_bound(), 0),
           fmt_int(scheme.table_stats().max_entries()),
           fmt_double(k * k *
                      std::pow(static_cast<double>(inst.n()), 2.0 / k) * logd, 0),
           fmt_int(rep.max_header_bits), fmt_int(rep.failures)});
    }
  }
  std::cout << table.render();
  std::cout << "\n(See examples/cover_trace for the Fig. 10 "
               "through-the-center route walkthrough.)\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("sec4_polystretch");
}
