// E15 -- the Section 1 motivation for the roundtrip metric.
//
// Cowen-Wagner's observation, which the paper builds on: in directed graphs
// one cannot bound the one-way path p(x,y) against d(x,y) with compact
// tables (sparse one-way spanners do not even exist), but one CAN bound a
// roundtrip against r(x,y) = d(x,y) + d(y,x).
//
// We make that concrete: per family we profile the asymmetry d(u,v)/d(v,u)
// and then measure, for the stretch-6 scheme, both the roundtrip stretch
// (bounded by 6) and the worst per-direction one-way stretch p(u,v)/d(u,v)
// (which blows up with the asymmetry, exactly why the roundtrip measure is
// the right one).
#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/stretch6.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E15", "Sec. 1 motivation ([11,13])",
               "Asymmetry profile per family, and one-way vs roundtrip "
               "stretch of the stretch-6 scheme:\nthe one-way measure "
               "explodes with asymmetry, the roundtrip measure never "
               "exceeds 6.");

  TextTable table({"family", "n", "max d(u,v)/d(v,u)", "mean asym",
                   "worst ONE-WAY stretch", "worst ROUNDTRIP stretch"});
  for (Family family : {Family::kBidirected, Family::kRandom, Family::kGrid,
                        Family::kRing}) {
    const NodeId n = 128;
    ExperimentInstance inst =
        build_instance(family, n, 4, 1500 + static_cast<int>(family));
    double max_asym = 1, sum_asym = 0;
    std::int64_t pairs = 0;
    for (NodeId u = 0; u < inst.n(); ++u) {
      for (NodeId v = u + 1; v < inst.n(); ++v) {
        const double a =
            static_cast<double>(std::max(inst.metric->d(u, v), inst.metric->d(v, u))) /
            static_cast<double>(std::max<Dist>(
                1, std::min(inst.metric->d(u, v), inst.metric->d(v, u))));
        max_asym = std::max(max_asym, a);
        sum_asym += a;
        ++pairs;
      }
    }

    Rng rng(99);
    Stretch6Scheme scheme(inst.graph(), *inst.metric, inst.names, rng);
    double worst_oneway = 0, worst_roundtrip = 0;
    Rng pair_rng(7);
    for (int i = 0; i < 3000; ++i) {
      auto s = static_cast<NodeId>(pair_rng.index(inst.n()));
      auto t = static_cast<NodeId>(pair_rng.index(inst.n()));
      if (s == t) continue;
      auto res = simulate_roundtrip(inst.graph(), scheme, s, t,
                                    inst.names.name_of(t));
      if (!res.ok()) {
        // A stretch-6 roundtrip must always deliver; an undelivered pair is
        // a scheme bug the exit code surfaces (finish() returns non-zero).
        gate_failures(1, "stretch6 (" + family_name(family) + ")");
        continue;
      }
      worst_oneway = std::max(
          worst_oneway, static_cast<double>(res.out_length) /
                            static_cast<double>(inst.metric->d(s, t)));
      worst_roundtrip = std::max(
          worst_roundtrip, static_cast<double>(res.roundtrip_length()) /
                               static_cast<double>(inst.metric->r(s, t)));
    }
    table.add_row({family_name(family), fmt_int(inst.n()),
                   fmt_double(max_asym), fmt_double(sum_asym / static_cast<double>(pairs)),
                   fmt_double(worst_oneway), fmt_double(worst_roundtrip)});
  }
  std::cout << table.render();
  std::cout << "\nReading: as families get more asymmetric (bidirected -> "
               "one-way ring), the one-way\nmeasure degrades without limit "
               "while the roundtrip measure stays under the paper's 6.\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("asymmetry_motivation");
}
