// E6 -- Theorem 9 / Figs. 4 and 6: the exponential tradeoff.
//
// Sweeps k at fixed n and n at fixed k; reports realized stretch against the
// substituted bound beta(k)(2^k - 1) (the paper's own bound
// with the RTZ spanner is (2k+eps)(2^k - 1)) and table sizes against
// O~(n^{1/k})-per-dictionary-level scaling.
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/exstretch.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E6", "Thm. 9, Figs. 4/6",
               "ExStretch: measured stretch vs the exponential bound; table "
               "size vs k.\nbound(ours) = 4(2k-1)(2^k-1); bound(paper, with "
               "RTZ spanner) = (2k+eps)(2^k-1).");

  TextTable table({"n", "k", "mean", "p99", "max", "bound(ours)",
                   "bound(paper)", "tbl entries", "hdr bits", "fail"});
  for (NodeId n : {128, 256}) {
    for (int k : {2, 3, 4}) {
      ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 500 + n + k);
      Rng rng(n + k);
      ExStretchScheme::Options opts;
      opts.k = k;
      ExStretchScheme scheme(inst.graph(), *inst.metric, inst.names, rng, opts);
      StretchReport rep = measure_stretch(inst, scheme, 4000, n + k);
      table.add_row({fmt_int(inst.n()), fmt_int(k), fmt_double(rep.mean_stretch),
                     fmt_double(rep.p99_stretch), fmt_double(rep.max_stretch),
                     fmt_double(scheme.stretch_bound(), 0),
                     fmt_double((2.0 * k) * (std::pow(2.0, k) - 1), 0),
                     fmt_int(scheme.table_stats().max_entries()),
                     fmt_int(rep.max_header_bits), fmt_int(rep.failures)});
    }
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("thm9_exstretch");
}
