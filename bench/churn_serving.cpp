// E-churn -- the serving-layer acceptance artifact: continuous availability
// under topology churn (the paper's Section 6 motivation, operationalized).
//
// For EVERY registered scheme, an EpochManager serves name-keyed roundtrips
// from 4 hammer threads without pause while the topology is churned through
// 3 background rebuilds (edge re-wiring, weight perturbation, node re-home,
// adversarial port re-labeling -- names fixed throughout).  One JSON line
// per scheme reports: queries served in total and during the rebuild
// windows, failures (the acceptance bar is zero), availability, and
// per-epoch stretch continuity (a deterministic sampled batch against each
// epoch as it becomes current).  The run loop itself is the shared
// src/serve/churn_harness.h driver -- the same code path `rtr_cli churn`
// exercises.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common.h"
#include "graph/churn.h"
#include "graph/churn_delta.h"
#include "serve/churn_harness.h"

namespace rtr::bench {
namespace {

constexpr NodeId kNodes = 300;
constexpr int kEpochs = 3;
constexpr std::uint64_t kSeed = 6001;
/// Instance size for the repair-latency rows; the acceptance regime is
/// n >= 2048 (RTR_REPAIR_BENCH_N overrides, e.g. for a quick local run).
constexpr NodeId kRepairNodes = 2048;

/// One scheme's full churn run; returns whether it met the acceptance bar.
bool run_scheme(const std::string& scheme_name) {
  Rng graph_rng(kSeed);
  GraphBuilder builder = make_family(Family::kRandom, kNodes, 4, graph_rng);
  builder.assign_adversarial_ports(graph_rng);
  Digraph g = builder.freeze();
  Rng name_rng(kSeed + 1);
  NameAssignment names = NameAssignment::random(g.node_count(), name_rng);

  ChurnRunOptions opts;
  opts.scheme = scheme_name;
  opts.epochs = kEpochs;
  opts.seed = kSeed;
  opts.churn.rehome_nodes = kNodes / 50;
  ChurnRunResult result =
      run_churn_workload(std::move(g), std::move(names), opts);
  std::cout << result.json << std::endl;
  if (!result.last_error.empty()) {
    std::cerr << scheme_name << ": rebuild failed: " << result.last_error
              << "\n";
  }
  if (!result.first_error.empty()) {
    std::cerr << scheme_name << ": first batch error: " << result.first_error
              << "\n";
  }

  // The run as a BENCH-schema cell: serving qps under churn plus the
  // epoch-0 deterministic stretch batch.
  bench_harness::CellResult cell;
  cell.scheme = scheme_name;
  cell.family = "random(churn)";
  cell.n = kNodes;
  cell.qps = result.wall_seconds > 0
                 ? static_cast<double>(result.queries) / result.wall_seconds
                 : 0;
  cell.pairs = result.stretch_pairs;
  cell.failures = static_cast<std::int64_t>(result.failures) +
                  result.stretch_failures;
  cell.mean_stretch = result.mean_stretch;
  cell.p99_stretch = result.p99_stretch;
  cell.max_stretch = result.max_stretch;
  cell.first_error = result.first_error.empty() ? result.last_error
                                                : result.first_error;
  record_cell(std::move(cell));
  gate_failures(static_cast<std::int64_t>(result.failures) +
                    result.stretch_failures,
                scheme_name + " (churn serving)");
  return result.ok(kEpochs);
}

/// Rebuild-latency row: incremental epoch repair vs the pinned-seed full
/// rebuild it replaces, for one port-stable churn script on an rtz3
/// instance.  Two EpochManagers share the seed and the churned topology;
/// the first routes the delta through SchemeRegistry::repair(), the second
/// is forced to rebuild from scratch (repair_max_fraction = 0 declines
/// every delta), so the two published epochs are byte-equal by the repair
/// contract and the wall-time ratio is the whole measurement.
///
/// Two churn scripts, one per regime:
///   * slack_jitter: weight increases confined to strictly slack edges --
///     non-disruptive re-pricing (congestion jitter), where the affected
///     region is provably tiny and repair must win big.  This is the
///     acceptance row: at <= 1% edge churn on n >= 2048, repair must be
///     >= 5x faster than the full rebuild.
///   * genuine rewire+perturb churn (gated only on taking the repair path):
///     topology actually changes, the scheme's global center trees differ
///     byte-for-byte, and an equivalence-preserving repair approaches full
///     rebuild cost -- the row records how the ratio degrades with
///     disruptiveness rather than pretending locality exists.
bool run_repair_latency(NodeId n, double churn_fraction, bool slack_jitter) {
  Rng graph_rng(kSeed + 40);
  // The instance carries ~5% redundant shadowed links (backup circuits
  // priced above the primary path): the population slack_jitter_step
  // re-prices.  A plain sparse random digraph has almost no slack edges,
  // and every requested churn rate would collapse to a handful of them.
  Digraph g = add_shadowed_links(
      make_family(Family::kRandom, n, 4, graph_rng).freeze(), 0.05, graph_rng);
  Rng name_rng(kSeed + 41);
  NameAssignment names = NameAssignment::random(g.node_count(), name_rng);

  EpochManagerOptions repair_opt;
  repair_opt.scheme_seed = kSeed;
  repair_opt.metric_mode = MetricMode::kSparse;
  repair_opt.enable_repair = true;
  repair_opt.repair_max_fraction = 0.02;
  EpochManagerOptions full_opt = repair_opt;
  full_opt.repair_max_fraction = 0.0;  // always the pinned-seed full build

  EpochManager repaired("rtz3", names, Digraph(g), repair_opt);
  EpochManager rebuilt("rtz3", std::move(names), Digraph(g), full_opt);

  Rng churn_rng(kSeed + 42);
  const Digraph next = [&] {
    if (slack_jitter) return slack_jitter_step(g, churn_fraction, churn_rng);
    ChurnOptions churn;
    churn.rewire_fraction = churn_fraction / 2;
    churn.perturb_fraction = churn_fraction / 2;
    churn.reassign_ports = false;  // a global relabel touches every edge
    return churn_step(g, churn, churn_rng);
  }();
  const double realized = diff_graphs(g, next).fraction();
  repaired.rebuild_now(Digraph(next));
  rebuilt.rebuild_now(std::move(next));

  const auto rc = repaired.counters();
  const auto fc = rebuilt.counters();
  const bool took_repair_path = rc.repairs == 1 && rc.repair_fallbacks == 0;
  const double ratio = rc.last_repair_ms > 0
                           ? fc.last_rebuild_ms / rc.last_repair_ms
                           : 0;
  const char* script = slack_jitter ? "slack_jitter" : "rewire+perturb";
  std::printf(
      "repair latency: n=%d %s churn=%.2f%% repair %.1f ms vs full rebuild "
      "%.1f ms (%.1fx)%s\n",
      n, script, realized * 100, rc.last_repair_ms, fc.last_rebuild_ms,
      ratio, took_repair_path ? "" : "  [REPAIR DECLINED -- fell back]");

  bench_harness::CellResult cell;
  cell.scheme = "rtz3";
  char family[64];
  std::snprintf(family, sizeof family, "%s(%.1f%%)", script,
                churn_fraction * 100);
  cell.family = family;
  cell.n = n;
  cell.repair_ms = took_repair_path ? rc.last_repair_ms : -1;
  cell.full_rebuild_ms = fc.last_rebuild_ms;
  if (!took_repair_path) cell.first_error = "repair declined; fell back";
  record_cell(std::move(cell));
  gate_failures(took_repair_path ? 0 : 1, "rtz3 (repair latency)");

  // The acceptance bar binds on the non-disruptive script in the paper
  // regime (n >= 2048, <= 1% edge churn): repair must be >= 5x faster.
  if (slack_jitter && n >= 2048 && churn_fraction <= 0.01) {
    return took_repair_path && ratio >= 5.0;
  }
  return took_repair_path;
}

int run() {
  print_banner("E-churn", "Sec. 6 (names decoupled from topology)",
               "Epoch-based serving under live churn: every registered "
               "scheme, zero failed queries across 3 background rebuilds; "
               "plus incremental-repair latency vs churn rate.");
  bool all_ok = true;
  for (const auto& scheme_name : SchemeRegistry::global().names()) {
    all_ok = run_scheme(scheme_name) && all_ok;
  }
  NodeId repair_n = kRepairNodes;
  if (const char* env = std::getenv("RTR_REPAIR_BENCH_N")) {
    repair_n = static_cast<NodeId>(std::atol(env));
  }
  // Repair latency vs churn rate: non-disruptive slack jitter at 0.5% and
  // 1% of edges (the acceptance rows), plus one genuinely disruptive
  // rewire+perturb row showing how the ratio collapses when the topology
  // -- and hence the scheme's global structure -- actually changes.
  all_ok = run_repair_latency(repair_n, 0.005, /*slack_jitter=*/true) && all_ok;
  all_ok = run_repair_latency(repair_n, 0.010, /*slack_jitter=*/true) && all_ok;
  all_ok = run_repair_latency(repair_n, 0.010, /*slack_jitter=*/false) && all_ok;
  const int finish_code = finish("churn_serving");
  return all_ok && finish_code == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtr::bench

int main() { return rtr::bench::run(); }
