// E-churn -- the serving-layer acceptance artifact: continuous availability
// under topology churn (the paper's Section 6 motivation, operationalized).
//
// For EVERY registered scheme, an EpochManager serves name-keyed roundtrips
// from 4 hammer threads without pause while the topology is churned through
// 3 background rebuilds (edge re-wiring, weight perturbation, node re-home,
// adversarial port re-labeling -- names fixed throughout).  One JSON line
// per scheme reports: queries served in total and during the rebuild
// windows, failures (the acceptance bar is zero), availability, and
// per-epoch stretch continuity (a deterministic sampled batch against each
// epoch as it becomes current).  The run loop itself is the shared
// src/serve/churn_harness.h driver -- the same code path `rtr_cli churn`
// exercises.
#include <iostream>
#include <string>

#include "common.h"
#include "serve/churn_harness.h"

namespace rtr::bench {
namespace {

constexpr NodeId kNodes = 300;
constexpr int kEpochs = 3;
constexpr std::uint64_t kSeed = 6001;

/// One scheme's full churn run; returns whether it met the acceptance bar.
bool run_scheme(const std::string& scheme_name) {
  Rng graph_rng(kSeed);
  GraphBuilder builder = make_family(Family::kRandom, kNodes, 4, graph_rng);
  builder.assign_adversarial_ports(graph_rng);
  Digraph g = builder.freeze();
  Rng name_rng(kSeed + 1);
  NameAssignment names = NameAssignment::random(g.node_count(), name_rng);

  ChurnRunOptions opts;
  opts.scheme = scheme_name;
  opts.epochs = kEpochs;
  opts.seed = kSeed;
  opts.churn.rehome_nodes = kNodes / 50;
  ChurnRunResult result =
      run_churn_workload(std::move(g), std::move(names), opts);
  std::cout << result.json << std::endl;
  if (!result.last_error.empty()) {
    std::cerr << scheme_name << ": rebuild failed: " << result.last_error
              << "\n";
  }
  if (!result.first_error.empty()) {
    std::cerr << scheme_name << ": first batch error: " << result.first_error
              << "\n";
  }

  // The run as a BENCH-schema cell: serving qps under churn plus the
  // epoch-0 deterministic stretch batch.
  bench_harness::CellResult cell;
  cell.scheme = scheme_name;
  cell.family = "random(churn)";
  cell.n = kNodes;
  cell.qps = result.wall_seconds > 0
                 ? static_cast<double>(result.queries) / result.wall_seconds
                 : 0;
  cell.pairs = result.stretch_pairs;
  cell.failures = static_cast<std::int64_t>(result.failures) +
                  result.stretch_failures;
  cell.mean_stretch = result.mean_stretch;
  cell.p99_stretch = result.p99_stretch;
  cell.max_stretch = result.max_stretch;
  cell.first_error = result.first_error.empty() ? result.last_error
                                                : result.first_error;
  record_cell(std::move(cell));
  gate_failures(static_cast<std::int64_t>(result.failures) +
                    result.stretch_failures,
                scheme_name + " (churn serving)");
  return result.ok(kEpochs);
}

int run() {
  print_banner("E-churn", "Sec. 6 (names decoupled from topology)",
               "Epoch-based serving under live churn: every registered "
               "scheme, zero failed queries across 3 background rebuilds.");
  bool all_ok = true;
  for (const auto& scheme_name : SchemeRegistry::global().names()) {
    all_ok = run_scheme(scheme_name) && all_ok;
  }
  const int finish_code = finish("churn_serving");
  return all_ok && finish_code == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtr::bench

int main() { return rtr::bench::run(); }
