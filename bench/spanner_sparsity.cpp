// E14 -- the roundtrip spanner behind Lemma 5 (after [11,13,35]).
//
// Extracts the double-tree union spanner and reports edges vs the
// O~(k n^{1+1/k} log RTDiam) budget and measured roundtrip stretch vs the
// construction's bound -- the digraph-spanner existence story the paper's
// introduction builds on.
#include <cmath>
#include <iostream>

#include "common.h"
#include "spanner/roundtrip_spanner.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E14", "Lemma 5 substrate ([11,13,35])",
               "Roundtrip spanners extracted from the double-tree hierarchy: "
               "sparsity and measured stretch.");

  TextTable table({"family", "n", "k", "graph edges", "spanner edges",
                   "budget kn^{1+1/k}logD", "measured stretch", "bound"});
  for (Family family : {Family::kRandom, Family::kScaleFree}) {
    for (NodeId n : {96, 160}) {
      for (int k : {2, 3}) {
        ExperimentInstance inst =
            build_instance(family, n, 4, 1400 + n + k + static_cast<int>(family));
        SpannerResult res =
            build_roundtrip_spanner(inst.graph(), *inst.metric, k);
        const double logd =
            std::log2(static_cast<double>(inst.metric->rt_diameter()) + 2);
        table.add_row(
            {family_name(family), fmt_int(inst.n()), fmt_int(k),
             fmt_int(inst.graph().edge_count()), fmt_int(res.edges),
             fmt_double(k * std::pow(static_cast<double>(inst.n()), 1.0 + 1.0 / k) *
                        logd, 0),
             fmt_double(res.measured_stretch), fmt_double(res.stretch_bound, 0)});
      }
    }
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("spanner_sparsity");
}
