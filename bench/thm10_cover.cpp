// E7 -- Theorem 10 / Figs. 7 and 8: the sparse cover construction.
//
// Sweeps k and the base radius d; measures the three guarantees:
//   (1) home clusters contain the seed balls (coverage),
//   (2) induced cluster radius <= (2k-1) d (we print the worst realized
//       blowup factor),
//   (3) per-node overlap <= 2k n^{1/k} (worst realized membership count),
// plus the number of Cover rounds against Lemma 12's bound.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common.h"
#include "cover/sparse_cover.h"
#include "rt/metric.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E7", "Thm. 10, Lemmas 11/12, Figs. 7/8",
               "Sparse covers on the roundtrip metric: radius blowup vs "
               "(2k-1), overlap vs 2k n^{1/k}, rounds vs Lemma 12.");

  TextTable table({"n", "k", "d", "clusters", "worst blowup", "limit(2k-1)",
                   "worst overlap", "limit(2kn^1/k)", "rounds", "coverage"});
  const NodeId n = 192;
  for (int k : {2, 3, 4}) {
    ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 600 + k);
    const Digraph rev = inst.graph().reversed();
    const Dist diam = inst.metric->rt_diameter();
    for (double frac : {0.1, 0.3, 0.6}) {
      const Dist d = std::max<Dist>(1, static_cast<Dist>(frac * static_cast<double>(diam)));
      SparseCoverResult cover = build_sparse_cover(*inst.metric, k, d);

      double worst_blowup = 0;
      bool coverage_ok = true;
      for (const auto& cluster : cover.clusters) {
        std::vector<char> mask(static_cast<std::size_t>(inst.n()), 0);
        for (NodeId v : cluster.members) mask[static_cast<std::size_t>(v)] = 1;
        auto induced = induced_roundtrip_from(inst.graph(), rev, cluster.center, mask);
        for (NodeId v : cluster.members) {
          worst_blowup =
              std::max(worst_blowup, static_cast<double>(
                                         induced[static_cast<std::size_t>(v)]) /
                                         static_cast<double>(d));
        }
      }
      for (NodeId v = 0; v < inst.n(); ++v) {
        const auto home = cover.home_of[static_cast<std::size_t>(v)];
        const auto& members = cover.clusters[static_cast<std::size_t>(home)].members;
        for (NodeId w : inst.metric->ball(v, d)) {
          coverage_ok = coverage_ok &&
                        std::binary_search(members.begin(), members.end(), w);
        }
      }
      std::int32_t worst_overlap = 0;
      for (std::int32_t c : cover.membership_counts(inst.n())) {
        worst_overlap = std::max(worst_overlap, c);
      }
      table.add_row(
          {fmt_int(inst.n()), fmt_int(k), fmt_int(d),
           fmt_int(static_cast<std::int64_t>(cover.clusters.size())),
           fmt_double(worst_blowup), fmt_int(2 * k - 1), fmt_int(worst_overlap),
           fmt_double(2.0 * k * std::pow(static_cast<double>(inst.n()), 1.0 / k)),
           fmt_int(cover.rounds), coverage_ok ? "ok" : "VIOLATED"});
    }
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("thm10_cover");
}
