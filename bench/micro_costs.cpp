// E12 -- construction/forwarding micro-costs (google-benchmark).
//
// The paper's Section 6 notes preprocessing is polynomial (APSP-dominated)
// and leaves efficient distributed setup open; these microbenchmarks pin
// down the centralized costs: APSP, cover construction, scheme builds, and
// the per-hop forwarding decision.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/exstretch.h"
#include "core/names.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "cover/hierarchy.h"
#include "graph/apsp.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "rtz/rtz3_scheme.h"

namespace rtr {
namespace {

Digraph bench_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder g = random_strongly_connected(n, 4.0, 8, rng);
  g.assign_adversarial_ports(rng);
  return g.freeze();
}

void BM_Apsp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_shortest_paths(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Apsp)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_SparseCoverBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 2);
  DenseRoundtripMetric metric(g);
  const Dist d = metric.rt_diameter() / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_sparse_cover(metric, 3, d));
  }
}
BENCHMARK(BM_SparseCoverBuild)->Arg(64)->Arg(128)->Arg(256);

void BM_Rtz3Build(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 3);
  DenseRoundtripMetric metric(g);
  auto names = NameAssignment::identity(n);
  for (auto _ : state) {
    Rng rng(4);
    Rtz3Scheme scheme(g, metric, names, rng);
    benchmark::DoNotOptimize(scheme.table_stats());
  }
}
BENCHMARK(BM_Rtz3Build)->Arg(64)->Arg(128);

void BM_Stretch6Build(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 5);
  DenseRoundtripMetric metric(g);
  auto names = NameAssignment::identity(n);
  for (auto _ : state) {
    Rng rng(6);
    Stretch6Scheme scheme(g, metric, names, rng);
    benchmark::DoNotOptimize(scheme.table_stats());
  }
}
BENCHMARK(BM_Stretch6Build)->Arg(64)->Arg(128);

void BM_Stretch6Roundtrip(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 7);
  DenseRoundtripMetric metric(g);
  auto names = NameAssignment::identity(n);
  Rng rng(8);
  Stretch6Scheme scheme(g, metric, names, rng);
  NodeId s = 0;
  for (auto _ : state) {
    NodeId t = static_cast<NodeId>((s + 17) % n);
    benchmark::DoNotOptimize(
        simulate_roundtrip(g, scheme, s, t, names.name_of(t)));
    s = static_cast<NodeId>((s + 1) % n);
  }
}
BENCHMARK(BM_Stretch6Roundtrip)->Arg(128)->Arg(256);

void BM_PolyStretchRoundtrip(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Digraph g = bench_graph(n, 9);
  DenseRoundtripMetric metric(g);
  auto names = NameAssignment::identity(n);
  PolyStretchScheme scheme(g, metric, names);
  NodeId s = 0;
  for (auto _ : state) {
    NodeId t = static_cast<NodeId>((s + 13) % n);
    benchmark::DoNotOptimize(
        simulate_roundtrip(g, scheme, s, t, names.name_of(t)));
    s = static_cast<NodeId>((s + 1) % n);
  }
}
BENCHMARK(BM_PolyStretchRoundtrip)->Arg(128);

}  // namespace
}  // namespace rtr

BENCHMARK_MAIN();
