// E11 -- Theorem 15: the stretch-2 lower bound regime.
//
// On bidirected gadgets (d(u,v) = d(v,u), the Gavoille-Gengler reduction's
// habitat) we chart the stretch-vs-table-size frontier: the full-table
// baseline achieves stretch 1 with Theta(n) entries; every compact scheme
// sits at sublinear entries and (necessarily, by Theorem 15) cannot push
// worst-case stretch below 2 across the family.
#include <iostream>

#include "baseline/full_table.h"
#include "common.h"
#include "core/lower_bound.h"
#include "core/stretch6.h"
#include "rtz/rtz3_scheme.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E11", "Thm. 15",
               "Bidirected gadget family: table size vs worst-pair stretch "
               "(stretch < 2 requires Omega(n)-bit tables).");

  TextTable table({"n", "scheme", "max tbl entries", "worst stretch",
                   "mean stretch", "symmetric"});
  for (NodeId n : {64, 128}) {
    Rng rng(1000 + n);
    GraphBuilder g = lower_bound_gadget(n, 0.25, rng);
    g.assign_adversarial_ports(rng);
    auto names = NameAssignment::random(g.node_count(), rng);
    ExperimentInstance inst;
    inst.graph_ptr = std::make_shared<const Digraph>(g.freeze());
    inst.names = names;
    inst.metric = std::make_shared<DenseRoundtripMetric>(inst.graph());
    const bool symmetric = is_distance_symmetric(*inst.metric);

    FullTableScheme baseline(inst.graph(), inst.names);
    StretchReport base_rep = measure_stretch(inst, baseline, 4000, n);
    table.add_row({fmt_int(inst.n()), baseline.name(),
                   fmt_int(baseline.table_stats().max_entries()),
                   fmt_double(base_rep.max_stretch),
                   fmt_double(base_rep.mean_stretch), symmetric ? "yes" : "NO"});

    Rng scheme_rng(n);
    Rtz3Scheme rtz3(inst.graph(), *inst.metric, inst.names, scheme_rng);
    StretchReport rtz_rep = measure_stretch(inst, rtz3, 4000, n + 1);
    table.add_row({fmt_int(inst.n()), rtz3.name(),
                   fmt_int(rtz3.table_stats().max_entries()),
                   fmt_double(rtz_rep.max_stretch),
                   fmt_double(rtz_rep.mean_stretch), symmetric ? "yes" : "NO"});

    Stretch6Scheme s6(inst.graph(), *inst.metric, inst.names, scheme_rng);
    StretchReport s6_rep = measure_stretch(inst, s6, 4000, n + 2);
    table.add_row({fmt_int(inst.n()), s6.name(),
                   fmt_int(s6.table_stats().max_entries()),
                   fmt_double(s6_rep.max_stretch),
                   fmt_double(s6_rep.mean_stretch), symmetric ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "\nTheorem 15 threshold: stretch >= "
            << kRoundtripStretchLowerBound
            << " for any o(n)-bit TINN scheme on some bidirected network.\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("lowerbound_gadget");
}
