// E5 -- Lemma 4 / Fig. 5: the prefix-hierarchical block distribution.
//
// For k in {2,3,4}, measures per-level coverage (every realizable i-digit
// prefix held inside every N_i(v)) and the blocks-per-node statistics the
// lemma bounds by O(log n).
#include <cmath>
#include <iostream>

#include "common.h"
#include "dict/block_assignment.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E5", "Lemma 4 + Fig. 5",
               "Prefix-block distribution across k: coverage of every level "
               "and O(log n) blocks per node.");

  TextTable table({"n", "k", "q", "max S_v", "mean S_v", "retries", "repairs",
                   "coverage"});
  for (int k : {2, 3, 4}) {
    for (NodeId n : {64, 216, 256}) {
      ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 300 + n + k);
      Alphabet alpha(inst.n(), k);
      Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
      Rng rng(n + k);
      BlockAssignment a =
          assign_blocks(alpha, *inst.metric, inst.names, hoods, rng);
      double total = 0;
      for (const auto& s : a.blocks_of) total += static_cast<double>(s.size());
      table.add_row({fmt_int(inst.n()), fmt_int(k), fmt_int(alpha.q()),
                     fmt_int(a.max_blocks_per_node()),
                     fmt_double(total / static_cast<double>(inst.n())),
                     fmt_int(a.randomized_tries), fmt_int(a.greedy_repairs),
                     verify_coverage(alpha, hoods, inst.names, a) ? "ok"
                                                                  : "VIOLATED"});
    }
  }
  std::cout << table.render();
  std::cout << "\n(See examples/prefix_trace for the Fig. 5 waypoint "
               "prefix-matching walkthrough.)\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("lemma4_prefix_blocks");
}
