// E3 -- Section 2 / Lemma 3 / Fig. 3: the stretch-6 scheme.
//
// Sweeps n and families; reports the realized stretch distribution (bound:
// 6), the max table size against the O~(sqrt n) budget, and header bits
// against O(log^2 n).
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/stretch6.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E3", "Sec. 2, Lemma 3, Fig. 3",
               "Stretch-6 TINN scheme: stretch <= 6, tables O~(sqrt n), "
               "headers O(log^2 n).");

  TextTable table({"family", "n", "mean", "p99", "max(<=6)", "tbl entries",
                   "sqrt(n)log^2", "hdr bits", "log^2 n", "fail"});
  for (Family family :
       {Family::kRandom, Family::kGrid, Family::kRing, Family::kScaleFree}) {
    for (NodeId n : {64, 144, 256, 400}) {
      ExperimentInstance inst =
          build_instance(family, n, 4, 400 + n + static_cast<int>(family));
      Rng rng(n);
      const auto build_t0 = std::chrono::steady_clock::now();
      Stretch6Scheme scheme(inst.graph(), *inst.metric, inst.names, rng);
      const double build_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - build_t0)
              .count();
      StretchReport rep = measure_stretch(inst, scheme, 6000, n);
      const double log_n = std::log2(static_cast<double>(inst.n()));
      table.add_row(
          {family_name(family), fmt_int(inst.n()), fmt_double(rep.mean_stretch),
           fmt_double(rep.p99_stretch), fmt_double(rep.max_stretch),
           fmt_int(scheme.table_stats().max_entries()),
           fmt_double(std::sqrt(static_cast<double>(inst.n())) * log_n * log_n),
           fmt_int(rep.max_header_bits), fmt_double(log_n * log_n),
           fmt_int(rep.failures)});

      bench_harness::CellResult cell;
      cell.scheme = "stretch6";
      cell.family = family_name(family);
      cell.n = inst.n();
      cell.build_ms = build_ms;
      cell.qps = rep.wall_seconds > 0
                     ? static_cast<double>(rep.pairs) / rep.wall_seconds
                     : 0;
      cell.pairs = rep.pairs;
      cell.failures = rep.failures;
      cell.invalid = rep.invalid;
      cell.mean_stretch = rep.mean_stretch;
      cell.p99_stretch = rep.p99_stretch;
      cell.max_stretch = rep.max_stretch;
      cell.max_header_bits = rep.max_header_bits;
      cell.table_entries_max = scheme.table_stats().max_entries();
      cell.bytes_per_node = scheme.table_stats().mean_bits() / 8.0;
      record_cell(std::move(cell));
    }
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("stretch6_scaling");
}
