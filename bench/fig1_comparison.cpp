// E1 -- Fig. 1: the scheme-comparison table.
//
// The paper's Fig. 1 compares table size, roundtrip capability, name
// independence and stretch across the literature.  We regenerate the
// comparable rows empirically: every scheme registered with the global
// SchemeRegistry is built by name over a common set of instances and driven
// through the QueryEngine; the paper's theoretical bound prints next to the
// measurement.  Adding a scheme to the registry adds its row here for free.
#include <iostream>

#include "common.h"
#include "rtz/hierarchy_label_scheme.h"

namespace rtr::bench {
namespace {

constexpr std::int64_t kPairBudget = 4000;

struct Row {
  std::string scheme;
  std::string bound;
  TableStats stats;
  StretchReport report;
};

std::string fmt_bound(double bound) {
  return bound == unbounded_stretch() ? "-" : fmt_double(bound, 0);
}

void run() {
  print_banner("E1", "Fig. 1",
               "Measured stretch and table sizes per registered scheme "
               "(random + grid + ring instances, n=256).\n"
               "Paper rows: [35] name-dep stretch 3 @ O~(sqrt n); this paper "
               "TINN stretch 6 @ O~(sqrt n),\n"
               "and TINN min{(2^{k/2}-1)(k+eps), 8k^2+4k-4} @ O~(n^{2/k}).");

  for (Family family : {Family::kRandom, Family::kGrid, Family::kRing}) {
    const NodeId n = 256;
    ExperimentInstance inst = build_instance(family, n, 4, 7 + static_cast<int>(family));
    std::vector<Row> rows;

    std::uint64_t seed = 1;
    for (const std::string& name : SchemeRegistry::global().names()) {
      const auto build_t0 = std::chrono::steady_clock::now();
      auto scheme = build_scheme(inst, name, 1234 + seed);
      const double build_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - build_t0)
              .count();
      StretchReport rep = measure_stretch(inst, scheme, kPairBudget, seed);
      rows.push_back(Row{name + " | " + scheme->name(),
                         fmt_bound(scheme->stretch_bound()),
                         scheme->table_stats(), rep});

      // The same numbers, machine-readable: one BENCH-schema cell per row.
      bench_harness::CellResult cell;
      cell.scheme = name;
      cell.family = family_name(family);
      cell.n = inst.n();
      cell.build_ms = build_ms;
      cell.qps = rep.wall_seconds > 0
                     ? static_cast<double>(rep.pairs) / rep.wall_seconds
                     : 0;
      cell.pairs = rep.pairs;
      cell.failures = rep.failures;
      cell.invalid = rep.invalid;
      cell.mean_stretch = rep.mean_stretch;
      cell.p99_stretch = rep.p99_stretch;
      cell.max_stretch = rep.max_stretch;
      cell.max_header_bits = rep.max_header_bits;
      cell.table_entries_max = rows.back().stats.max_entries();
      cell.bytes_per_node = rows.back().stats.mean_bits() / 8.0;
      cell.first_error = rep.first_error;
      record_cell(std::move(cell));
      ++seed;
    }

    // Section 4.4's remark scheme is labelled (not TINN-addressed), so it
    // stays off the registry and runs on the template fast path.
    HierarchyLabelScheme::Options hl_opts;
    hl_opts.k = 3;
    HierarchyLabelScheme hl(inst.graph(), *inst.metric, inst.names, hl_opts);
    rows.push_back(Row{"hier-label k=3 (Sec 4.4 remark)",
                       fmt_double(hl.stretch_bound(), 0), hl.table_stats(),
                       measure_stretch(inst, hl, kPairBudget, 6)});

    TextTable table({"scheme", "bound", "max tbl entries", "max tbl KiB",
                     "mean stretch", "p99", "max", "hdr bits", "fail"});
    for (const auto& row : rows) {
      table.add_row({row.scheme, row.bound, fmt_int(row.stats.max_entries()),
                     fmt_double(static_cast<double>(row.stats.max_bits()) / 8192.0),
                     fmt_double(row.report.mean_stretch),
                     fmt_double(row.report.p99_stretch),
                     fmt_double(row.report.max_stretch),
                     fmt_int(row.report.max_header_bits),
                     fmt_int(row.report.failures)});
    }
    std::cout << "family = " << family_name(family) << ", n = " << n << "\n"
              << table.render() << "\n";
  }
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("fig1_comparison");
}
