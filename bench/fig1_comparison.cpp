// E1 -- Fig. 1: the scheme-comparison table.
//
// The paper's Fig. 1 compares table size, roundtrip capability, name
// independence and stretch across the literature.  We regenerate the
// comparable rows empirically: for each implemented scheme we measure max
// table entries/bits and the realized stretch distribution on a common set
// of instances, and print the paper's theoretical bound next to the
// measurement.
#include <iostream>

#include "baseline/full_table.h"
#include "common.h"
#include "core/exstretch.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "rtz/hierarchy_label_scheme.h"
#include "rtz/rtz3_scheme.h"

namespace rtr::bench {
namespace {

constexpr std::int64_t kPairBudget = 4000;

struct Row {
  std::string scheme;
  std::string bound;
  std::string name_independent;
  TableStats stats;
  StretchReport report;
};

void run() {
  print_banner("E1", "Fig. 1",
               "Measured stretch and table sizes per scheme (random + grid + "
               "ring instances, n=256).\n"
               "Paper rows: [35] name-dep stretch 3 @ O~(sqrt n); this paper "
               "TINN stretch 6 @ O~(sqrt n),\n"
               "and TINN min{(2^{k/2}-1)(k+eps), 8k^2+4k-4} @ O~(n^{2/k}).");

  for (Family family : {Family::kRandom, Family::kGrid, Family::kRing}) {
    const NodeId n = 256;
    ExperimentInstance inst = build_instance(family, n, 4, 7 + static_cast<int>(family));
    Rng rng(1234);
    std::vector<Row> rows;

    FullTableScheme baseline(inst.graph, inst.names);
    rows.push_back(Row{"full-table (baseline)", "1", "yes",
                       baseline.table_stats(),
                       measure_stretch(inst, baseline, kPairBudget, 1)});

    Rtz3Scheme rtz3(inst.graph, *inst.metric, inst.names, rng);
    rows.push_back(Row{"rtz3 [35]-style (name-dep)", "3", "no",
                       rtz3.table_stats(),
                       measure_stretch(inst, rtz3, kPairBudget, 2)});

    HierarchyLabelScheme::Options hl_opts;
    hl_opts.k = 3;
    HierarchyLabelScheme hl(inst.graph, *inst.metric, inst.names, hl_opts);
    rows.push_back(Row{"hier-label k=3 (Sec 4.4 remark)",
                       fmt_double(hl.stretch_bound(), 0), "no",
                       hl.table_stats(),
                       measure_stretch(inst, hl, kPairBudget, 6)});

    Stretch6Scheme s6(inst.graph, *inst.metric, inst.names, rng);
    rows.push_back(Row{"stretch6 (this paper, Sec 2)", "6", "yes",
                       s6.table_stats(),
                       measure_stretch(inst, s6, kPairBudget, 3)});

    for (int k : {3, 4}) {
      ExStretchScheme::Options opts;
      opts.k = k;
      ExStretchScheme ex(inst.graph, *inst.metric, inst.names, rng, opts);
      rows.push_back(Row{"exstretch k=" + std::to_string(k) + " (Sec 3)",
                         fmt_double(ex.stretch_bound(), 0), "yes",
                         ex.table_stats(),
                         measure_stretch(inst, ex, kPairBudget, 4)});
    }

    for (int k : {3}) {
      PolyStretchScheme::Options opts;
      opts.k = k;
      PolyStretchScheme poly(inst.graph, *inst.metric, inst.names, opts);
      rows.push_back(Row{"polystretch k=" + std::to_string(k) + " (Sec 4)",
                         fmt_double(poly.stretch_bound(), 0), "yes",
                         poly.table_stats(),
                         measure_stretch(inst, poly, kPairBudget, 5)});
    }

    TextTable table({"scheme", "bound", "TINN", "max tbl entries",
                     "max tbl KiB", "mean stretch", "p99", "max", "hdr bits",
                     "fail"});
    for (const auto& row : rows) {
      table.add_row({row.scheme, row.bound, row.name_independent,
                     fmt_int(row.stats.max_entries()),
                     fmt_double(static_cast<double>(row.stats.max_bits()) / 8192.0),
                     fmt_double(row.report.mean_stretch),
                     fmt_double(row.report.p99_stretch),
                     fmt_double(row.report.max_stretch),
                     fmt_int(row.report.max_header_bits),
                     fmt_int(row.report.failures)});
    }
    std::cout << "family = " << family_name(family) << ", n = " << n << "\n"
              << table.render() << "\n";
  }
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return 0;
}
