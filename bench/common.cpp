#include "common.h"

#include <cstdlib>
#include <iostream>
#include <utility>

namespace rtr::bench {

namespace {

/// Process-wide gate + recorder state (bench mains are single-threaded).
struct SessionState {
  std::int64_t failures = 0;
  std::string first_context;
  std::vector<bench_harness::CellResult> cells;
};

SessionState& session() {
  static SessionState state;
  return state;
}

}  // namespace

ExperimentInstance build_instance(Family family, NodeId n, Weight max_weight,
                                  std::uint64_t seed) {
  ExperimentInstance inst;
  Rng rng(seed);
  GraphBuilder builder = make_family(family, n, max_weight, rng);
  builder.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(builder.node_count(), rng);
  inst.graph_ptr = std::make_shared<const Digraph>(builder.freeze());
  inst.metric = std::make_shared<DenseRoundtripMetric>(*inst.graph_ptr);
  return inst;
}

std::shared_ptr<const Scheme> build_scheme(
    const ExperimentInstance& inst, const std::string& scheme_name,
    std::uint64_t seed, std::map<std::string, std::string> options) {
  return SchemeRegistry::global().build(scheme_name,
                                        inst.context(seed, std::move(options)));
}

StretchReport measure_stretch(const ExperimentInstance& inst,
                              std::shared_ptr<const Scheme> scheme,
                              std::int64_t pair_budget, std::uint64_t seed,
                              int threads) {
  QueryEngineOptions opts;
  opts.threads = threads;
  const std::string context = scheme->name();
  QueryEngine engine(inst.graph_ptr, inst.metric, inst.names,
                     std::move(scheme), opts);
  BatchOptions batch;
  batch.pair_budget = pair_budget;
  batch.seed = seed;
  StretchReport report = engine.run_sampled(batch);
  gate_failures(report.failures, context);
  return report;
}

void gate_failures(std::int64_t failures, const std::string& context) {
  if (failures <= 0) return;
  auto& s = session();
  if (s.failures == 0) s.first_context = context;
  s.failures += failures;
}

void record_cell(bench_harness::CellResult cell) {
  session().cells.push_back(std::move(cell));
}

int finish(const std::string& tool) {
  auto& s = session();
  const char* out = std::getenv("RTR_BENCH_JSON");
  if (out != nullptr && *out != '\0' && !s.cells.empty()) {
    const char* rev_env = std::getenv("RTR_BENCH_REV");
    const std::string rev = (rev_env != nullptr && *rev_env != '\0')
                                ? rev_env
                                : std::string("dev");
    bench_harness::SuiteResult result;
    result.cells = s.cells;
    auto doc = bench_harness::suite_to_json(
        result, bench_harness::BenchConfig{}, rev);
    doc.set("tool", tool);
    // Each experiment binary hard-codes its own sweep; the default-config
    // echo would be misleading, so replace it with a pointer to the cells.
    Json note{JsonObject{}};
    note.set("note", "sweep fixed by the tool; see cells");
    doc.set("config", std::move(note));
    try {
      bench_harness::write_text_file(out, doc.dump());
      std::cerr << tool << ": wrote " << s.cells.size() << " cells to " << out
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << tool << ": cannot write " << out << ": " << e.what() << "\n";
      return 1;
    }
  }
  if (s.failures > 0) {
    std::cerr << tool << ": FAILED -- " << s.failures
              << " roundtrip queries failed (first in: " << s.first_context
              << ")\n";
    return 1;
  }
  return 0;
}

void print_banner(const std::string& experiment, const std::string& artifact,
                  const std::string& what) {
  std::cout << "\n=== " << experiment << " | paper artifact: " << artifact
            << " ===\n"
            << what << "\n\n";
}

}  // namespace rtr::bench
