#include "common.h"

#include <iostream>
#include <utility>

namespace rtr::bench {

ExperimentInstance build_instance(Family family, NodeId n, Weight max_weight,
                                  std::uint64_t seed) {
  ExperimentInstance inst;
  Rng rng(seed);
  Digraph g = make_family(family, n, max_weight, rng);
  g.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(g.node_count(), rng);
  inst.graph_ptr = std::make_shared<const Digraph>(std::move(g));
  inst.metric = std::make_shared<RoundtripMetric>(*inst.graph_ptr);
  return inst;
}

std::shared_ptr<const Scheme> build_scheme(
    const ExperimentInstance& inst, const std::string& scheme_name,
    std::uint64_t seed, std::map<std::string, std::string> options) {
  return SchemeRegistry::global().build(scheme_name,
                                        inst.context(seed, std::move(options)));
}

StretchReport measure_stretch(const ExperimentInstance& inst,
                              std::shared_ptr<const Scheme> scheme,
                              std::int64_t pair_budget, std::uint64_t seed,
                              int threads) {
  QueryEngineOptions opts;
  opts.threads = threads;
  QueryEngine engine(inst.graph_ptr, inst.metric, inst.names,
                     std::move(scheme), opts);
  return engine.run_sampled(pair_budget, seed);
}

void print_banner(const std::string& experiment, const std::string& artifact,
                  const std::string& what) {
  std::cout << "\n=== " << experiment << " | paper artifact: " << artifact
            << " ===\n"
            << what << "\n\n";
}

}  // namespace rtr::bench
