#include "common.h"

#include <iostream>

namespace rtr::bench {

ExperimentInstance build_instance(Family family, NodeId n, Weight max_weight,
                                  std::uint64_t seed) {
  ExperimentInstance inst;
  Rng rng(seed);
  inst.graph = make_family(family, n, max_weight, rng);
  inst.graph.assign_adversarial_ports(rng);
  inst.names = NameAssignment::random(inst.graph.node_count(), rng);
  inst.metric = std::make_shared<RoundtripMetric>(inst.graph);
  return inst;
}

void print_banner(const std::string& experiment, const std::string& artifact,
                  const std::string& what) {
  std::cout << "\n=== " << experiment << " | paper artifact: " << artifact
            << " ===\n"
            << what << "\n\n";
}

}  // namespace rtr::bench
