// E8 -- Theorem 13: double-tree cover hierarchy on the roundtrip metric.
//
// Builds the full level hierarchy and reports, per level: tree count, worst
// RTHeight against (2k-1) 2^i, and worst per-node membership against
// 2k n^{1/k}; then summarizes per-node storage implied by memberships.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common.h"
#include "cover/hierarchy.h"
#include "rtz/handshake.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E8", "Thm. 13",
               "Hierarchy of double-tree covers: per-level heights and "
               "memberships (k=3, random n=192).");

  const NodeId n = 192;
  const int k = 3;
  ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 700);
  const Digraph rev = inst.graph().reversed();
  CoverHierarchy hierarchy(inst.graph(), rev, *inst.metric, k);

  TextTable table({"level", "radius 2^i", "trees", "max RTHeight",
                   "limit (2k-1)2^i", "max membership", "limit 2kn^{1/k}"});
  for (std::int32_t i = 0; i < hierarchy.level_count(); ++i) {
    const HierarchyLevel& lvl = hierarchy.level(i);
    Dist max_height = 0;
    for (const DoubleTree& t : lvl.trees) max_height = std::max(max_height, t.rt_height());
    std::size_t max_members = 0;
    for (NodeId v = 0; v < inst.n(); ++v) {
      max_members = std::max(max_members,
                             lvl.trees_of[static_cast<std::size_t>(v)].size());
    }
    table.add_row({fmt_int(i + 1), fmt_int(lvl.radius),
                   fmt_int(static_cast<std::int64_t>(lvl.trees.size())),
                   fmt_int(max_height), fmt_int((2 * k - 1) * lvl.radius),
                   fmt_int(static_cast<std::int64_t>(max_members)),
                   fmt_double(2.0 * k *
                              std::pow(static_cast<double>(inst.n()), 1.0 / k))});
  }
  std::cout << table.render();

  TableStats stats = hierarchy_node_stats(hierarchy, inst.n(), inst.n(),
                                          inst.graph().port_space());
  std::cout << "\nper-node membership storage: " << stats.brief() << "\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("thm13_hierarchy");
}
