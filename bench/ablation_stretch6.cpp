// Ablation (Section 2.2 remark): direct continuation from the dictionary
// node vs detouring back through the source, and random-sampled vs greedy
// hitting-set centers in the substrate.
//
// The paper predicts: the detour has the same worst-case stretch (6) but
// longer realized paths; center selection only shifts constants.
#include <iostream>

#include "common.h"
#include "core/stretch6.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E13 (ablation)", "Sec. 2.2 remark",
               "Stretch-6 design alternatives on identical instances.");

  TextTable table({"family", "n", "variant", "mean stretch", "p99", "max",
                   "max tbl entries"});
  for (Family family : {Family::kRandom, Family::kRing}) {
    const NodeId n = 256;
    ExperimentInstance inst =
        build_instance(family, n, 4, 1300 + static_cast<int>(family));
    struct Variant {
      std::string label;
      bool detour;
      bool greedy;
    };
    for (const auto& v :
         {Variant{"direct + sampled centers", false, false},
          Variant{"detour-via-source", true, false},
          Variant{"direct + greedy centers", false, true}}) {
      Rng rng(4242);  // identical randomness across variants
      Stretch6Scheme::Options opts;
      opts.detour_via_source = v.detour;
      opts.substrate.greedy_centers = v.greedy;
      Stretch6Scheme scheme(inst.graph(), *inst.metric, inst.names, rng, opts);
      StretchReport rep = measure_stretch(inst, scheme, 4000, 7);
      table.add_row({family_name(family), fmt_int(inst.n()), v.label,
                     fmt_double(rep.mean_stretch), fmt_double(rep.p99_stretch),
                     fmt_double(rep.max_stretch),
                     fmt_int(scheme.table_stats().max_entries())});
    }
  }
  std::cout << table.render();
  std::cout << "\nExpectation (paper Sec. 2.2): identical <= 6 worst case; "
               "detour realizes longer paths.\n";
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("ablation_stretch6");
}
