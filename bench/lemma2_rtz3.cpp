// E4 -- Lemma 2: the name-dependent stretch-3 substrate.
//
// Verifies, over full pair sets, the inequality the stretch-6 analysis
// consumes -- p(u,v) <= d(u,v) + r(u,v) -- and reports the roundtrip stretch
// distribution and table scaling of the substrate alone.
#include <cmath>
#include <iostream>

#include "common.h"
#include "rtz/rtz3_scheme.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E4", "Lemma 2",
               "Substrate guarantee p(u,v) <= d(u,v)+r(u,v) (checked on all "
               "pairs) and O~(sqrt n) tables.");

  TextTable table({"n", "family", "pairs", "ineq violations", "mean stretch",
                   "max stretch", "max tbl entries", "sqrt(n)*log2(n)^2"});
  for (Family family : {Family::kRandom, Family::kRing}) {
    for (NodeId n : {64, 128, 256}) {
      ExperimentInstance inst =
          build_instance(family, n, 4, 200 + n + static_cast<int>(family));
      Rng rng(n);
      Rtz3Scheme scheme(inst.graph(), *inst.metric, inst.names, rng);
      std::int64_t violations = 0, pairs = 0;
      Summary stretch;
      for (NodeId s = 0; s < inst.n(); ++s) {
        for (NodeId t = 0; t < inst.n(); ++t) {
          if (s == t) continue;
          auto res = simulate_roundtrip(inst.graph(), scheme, s, t,
                                        inst.names.name_of(t));
          ++pairs;
          if (!res.ok()) {
            ++violations;
            continue;
          }
          const Dist r = inst.metric->r(s, t);
          if (res.out_length > inst.metric->d(s, t) + r ||
              res.back_length > inst.metric->d(t, s) + r) {
            ++violations;
          }
          stretch.add(static_cast<double>(res.roundtrip_length()) /
                      static_cast<double>(r));
        }
      }
      // A Lemma 2 violation (undelivered or over-bound leg) is a scheme bug;
      // gate it so the binary exits non-zero instead of just printing.
      gate_failures(violations, "rtz3 (" + family_name(family) + ")");
      const double log_n = std::log2(static_cast<double>(inst.n()));
      table.add_row({fmt_int(inst.n()), family_name(family), fmt_int(pairs),
                     fmt_int(violations), fmt_double(stretch.mean()),
                     fmt_double(stretch.max()),
                     fmt_int(scheme.table_stats().max_entries()),
                     fmt_double(std::sqrt(static_cast<double>(inst.n())) *
                                log_n * log_n)});
    }
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("lemma2_rtz3");
}
