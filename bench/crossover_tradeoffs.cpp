// E10 -- Section 4's crossover claim.
//
// "For small values of k (k <= 12), the first [exponential] scheme gives a
// better tradeoff than the second; putting the two results together gives
// the bound claimed in the abstract."  We tabulate both stretch bounds as
// functions of k -- the paper's own (2k+eps)(2^{k}-1)-style exponential
// bound vs 8k^2+4k-4 -- mark the crossover, and attach measured stretches
// for the k values we can run.
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/exstretch.h"
#include "core/polystretch.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner(
      "E10", "Sec. 4 intro (abstract bound)",
      "Both tradeoff schemes normalized to the SAME table size O~(n^{2/k})\n"
      "(exponential scheme run with parameter k/2), exactly as the paper's\n"
      "abstract states the combined bound:\n"
      "    min{ (2^{k/2}-1)(k+eps), 8k^2+4k-4 }.\n"
      "The paper: \"for small values of k (k <= 12), the first scheme gives "
      "a better tradeoff\".");

  TextTable table({"k", "exp bound (2^{k/2}-1)k", "poly bound 8k^2+4k-4",
                   "min (abstract)", "winner"});
  int crossover = -1;
  for (int k = 2; k <= 20; ++k) {
    const double exp_bound = (std::pow(2.0, k / 2.0) - 1) * k;  // eps -> 0
    const double poly_bound = 8.0 * k * k + 4 * k - 4;
    const bool poly_wins = poly_bound < exp_bound;
    if (poly_wins && crossover < 0) crossover = k;
    table.add_row({fmt_int(k), fmt_double(exp_bound, 0),
                   fmt_double(poly_bound, 0),
                   fmt_double(std::min(exp_bound, poly_bound), 0),
                   poly_wins ? "polynomial" : "exponential"});
  }
  std::cout << table.render();
  std::cout << "\nmeasured crossover (eps -> 0): exponential wins up to k = "
            << crossover - 1 << ", polynomial from k = " << crossover
            << " (paper: k <= 12 favours the exponential scheme; any eps > 0 "
               "shifts the\ncrossover below our eps -> 0 value)\n\n";

  // Measured stretch for the k values that are cheap to run.
  TextTable measured({"k", "exstretch max stretch", "polystretch max stretch"});
  const NodeId n = 128;
  for (int k : {2, 3, 4}) {
    ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 900 + k);
    Rng rng(k);
    ExStretchScheme::Options ex_opts;
    ex_opts.k = k;
    ExStretchScheme ex(inst.graph(), *inst.metric, inst.names, rng, ex_opts);
    PolyStretchScheme::Options poly_opts;
    poly_opts.k = k;
    PolyStretchScheme poly(inst.graph(), *inst.metric, inst.names, poly_opts);
    StretchReport ex_rep = measure_stretch(inst, ex, 3000, k);
    StretchReport poly_rep = measure_stretch(inst, poly, 3000, k);
    measured.add_row({fmt_int(k), fmt_double(ex_rep.max_stretch),
                      fmt_double(poly_rep.max_stretch)});
  }
  std::cout << measured.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("crossover_tradeoffs");
}
