// E2 -- Fig. 2 / Lemma 1: the block distribution.
//
// Fig. 2 illustrates a 36-node digraph where every neighborhood contains
// every block type with O(log n) blocks per node.  We sweep n, run the
// randomized assignment, and report blocks-per-node statistics, the
// verification outcome, and how often the randomized pass needed retries or
// greedy repairs.
#include <cmath>
#include <iostream>

#include "common.h"
#include "dict/block_assignment.h"

namespace rtr::bench {
namespace {

void run() {
  print_banner("E2", "Fig. 2 + Lemma 1",
               "Blocks per node vs n (k=2): the lemma promises O(log n) "
               "blocks with every neighborhood\ncontaining every block type.");

  TextTable table({"n", "blocks", "max S_v", "mean S_v", "log2 n",
                   "retries", "repairs", "coverage"});
  for (NodeId n : {36, 64, 144, 256, 400, 576}) {
    ExperimentInstance inst = build_instance(Family::kRandom, n, 4, 100 + n);
    Alphabet alpha(inst.n(), 2);
    Neighborhoods hoods = compute_neighborhoods(*inst.metric, inst.names);
    Rng rng(n);
    BlockAssignment a =
        assign_blocks(alpha, *inst.metric, inst.names, hoods, rng);
    double total = 0;
    for (const auto& s : a.blocks_of) total += static_cast<double>(s.size());
    const bool covered = verify_coverage(alpha, hoods, inst.names, a);
    table.add_row({fmt_int(inst.n()), fmt_int(alpha.relevant_block_count()),
                   fmt_int(a.max_blocks_per_node()),
                   fmt_double(total / static_cast<double>(inst.n())),
                   fmt_double(std::log2(static_cast<double>(inst.n()))),
                   fmt_int(a.randomized_tries), fmt_int(a.greedy_repairs),
                   covered ? "ok" : "VIOLATED"});
  }
  std::cout << table.render();
}

}  // namespace
}  // namespace rtr::bench

int main() {
  rtr::bench::run();
  return rtr::bench::finish("lemma1_blocks");
}
