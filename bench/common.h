// Shared harness for the experiment binaries (DESIGN.md experiment index).
//
// Each bench builds graph instances, runs roundtrip simulations over sampled
// (or exhaustive) pairs, and prints the rows the corresponding paper artifact
// reports.  Binaries take no arguments and bound their own runtime.
#ifndef RTR_BENCH_COMMON_H
#define RTR_BENCH_COMMON_H

#include <memory>
#include <string>
#include <vector>

#include "core/names.h"
#include "graph/generators.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace rtr::bench {

struct ExperimentInstance {
  Digraph graph{0};
  NameAssignment names = NameAssignment::identity(0);
  std::shared_ptr<RoundtripMetric> metric;

  [[nodiscard]] NodeId n() const { return graph.node_count(); }
};

/// Builds a family instance with adversarial ports and names.
[[nodiscard]] ExperimentInstance build_instance(Family family, NodeId n,
                                                Weight max_weight,
                                                std::uint64_t seed);

/// Aggregated stretch measurements for one (scheme, instance) cell.
struct StretchReport {
  std::int64_t pairs = 0;
  std::int64_t failures = 0;
  double mean_stretch = 0;
  double p99_stretch = 0;
  double max_stretch = 0;
  std::int64_t max_header_bits = 0;
};

/// Runs `pair_budget` sampled ordered pairs (all pairs if the budget covers
/// them) through the scheme and aggregates stretch.
template <typename Scheme>
StretchReport measure_stretch(const ExperimentInstance& inst,
                              const Scheme& scheme, std::int64_t pair_budget,
                              std::uint64_t seed) {
  StretchReport report;
  Summary stretch;
  const NodeId n = inst.n();
  const std::int64_t all = static_cast<std::int64_t>(n) * (n - 1);
  Rng rng(seed);
  auto run_pair = [&](NodeId s, NodeId t) {
    auto res = simulate_roundtrip(inst.graph, scheme, s, t,
                                  inst.names.name_of(t));
    ++report.pairs;
    if (!res.ok()) {
      ++report.failures;
      return;
    }
    stretch.add(static_cast<double>(res.roundtrip_length()) /
                static_cast<double>(inst.metric->r(s, t)));
    report.max_header_bits = std::max(report.max_header_bits, res.max_header_bits);
  };
  if (all <= pair_budget) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s != t) run_pair(s, t);
      }
    }
  } else {
    for (std::int64_t i = 0; i < pair_budget; ++i) {
      auto s = static_cast<NodeId>(rng.index(n));
      auto t = static_cast<NodeId>(rng.index(n));
      if (s == t) t = static_cast<NodeId>((t + 1) % n);
      run_pair(s, t);
    }
  }
  if (stretch.count() > 0) {
    report.mean_stretch = stretch.mean();
    report.p99_stretch = stretch.percentile(0.99);
    report.max_stretch = stretch.max();
  }
  return report;
}

/// Pretty banner for a bench section.
void print_banner(const std::string& experiment, const std::string& artifact,
                  const std::string& what);

}  // namespace rtr::bench

#endif  // RTR_BENCH_COMMON_H
