// Shared harness for the experiment binaries (the per-bench header comments
// name the paper artifact each one reproduces).
//
// Each bench builds graph instances, runs roundtrip simulations over sampled
// (or exhaustive) pairs, and prints the rows the corresponding paper artifact
// reports.  Binaries take no arguments and bound their own runtime.
//
// Two measurement paths are provided:
//   * the duck-typed template measure_stretch (no vtable on the forwarding
//     hot path) for perf-sensitive benches, and
//   * the registry/engine path (build_scheme + measure_stretch over
//     rtr::Scheme) which shards the batch across a QueryEngine worker pool.
#ifndef RTR_BENCH_COMMON_H
#define RTR_BENCH_COMMON_H

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness/bench_harness.h"
#include "core/names.h"
#include "graph/generators.h"
#include "net/query_engine.h"
#include "net/scheme.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace rtr::bench {

/// Aggregated stretch measurements for one (scheme, instance) cell -- the
/// engine's report type, shared with the serving layer.
using StretchReport = ::rtr::StretchReport;

struct ExperimentInstance {
  std::shared_ptr<const Digraph> graph_ptr;
  NameAssignment names = NameAssignment::identity(0);
  std::shared_ptr<const RoundtripMetric> metric;

  [[nodiscard]] const Digraph& graph() const { return *graph_ptr; }
  [[nodiscard]] NodeId n() const { return graph_ptr->node_count(); }

  /// The instance as a registry BuildContext (scheme randomness from `seed`).
  [[nodiscard]] BuildContext context(
      std::uint64_t seed, std::map<std::string, std::string> options = {}) const {
    return BuildContext::wrap(graph_ptr, metric, names, seed,
                              std::move(options));
  }
};

/// Builds a family instance with adversarial ports and names.
[[nodiscard]] ExperimentInstance build_instance(Family family, NodeId n,
                                                Weight max_weight,
                                                std::uint64_t seed);

/// Builds a registered scheme over the instance by name.
[[nodiscard]] std::shared_ptr<const Scheme> build_scheme(
    const ExperimentInstance& inst, const std::string& scheme_name,
    std::uint64_t seed, std::map<std::string, std::string> options = {});

/// Registry/engine measurement path: runs `pair_budget` sampled ordered pairs
/// (all pairs if the budget covers them) through the scheme across `threads`
/// workers (0: hardware concurrency) and aggregates stretch.
[[nodiscard]] StretchReport measure_stretch(const ExperimentInstance& inst,
                                            std::shared_ptr<const Scheme> scheme,
                                            std::int64_t pair_budget,
                                            std::uint64_t seed,
                                            int threads = 0);

/// Exit-code gate: notes `failures` measured failures (with a context label
/// for the first diagnostic).  Every measure_stretch call reports into this
/// automatically, so a bench binary whose main returns finish() exits
/// non-zero as soon as any query fails.
void gate_failures(std::int64_t failures, const std::string& context);

/// Records a measured cell in the shared BENCH_<rev>.json schema; written by
/// finish() when RTR_BENCH_JSON names an output path.
void record_cell(bench_harness::CellResult cell);

/// The bench main's return value: 0 iff no gated failure was noted.  When
/// the RTR_BENCH_JSON environment variable is set, first writes all recorded
/// cells there as an rtr-bench/1 document ("tool" = `tool`, rev from
/// RTR_BENCH_REV or "dev"), so the experiment binaries' numbers land in the
/// same machine-readable schema the rtr_bench orchestrator emits.
[[nodiscard]] int finish(const std::string& tool);

/// Template fast path: same aggregation, no virtual dispatch, single thread.
template <TemplatedScheme Scheme>
StretchReport measure_stretch(const ExperimentInstance& inst,
                              const Scheme& scheme, std::int64_t pair_budget,
                              std::uint64_t seed) {
  StretchReport report;
  Summary stretch;
  const NodeId n = inst.n();
  const auto start = std::chrono::steady_clock::now();
  auto run_pair = [&](NodeId s, NodeId t) {
    auto res = simulate_roundtrip(inst.graph(), scheme, s, t,
                                  inst.names.name_of(t));
    ++report.pairs;
    if (!res.ok()) {
      ++report.failures;
      return;
    }
    stretch.add(static_cast<double>(res.roundtrip_length()) /
                static_cast<double>(inst.metric->r(s, t)));
    report.max_header_bits = std::max(report.max_header_bits, res.max_header_bits);
  };
  // One sampler for every measurement path (exhaustive under the budget,
  // rejection-sampled uniform ordered pairs above it).
  for (const RoundtripQuery& q : QueryEngine::sample_pairs(n, pair_budget, seed)) {
    run_pair(q.src, q.dst);
  }
  if (stretch.count() > 0) {
    report.mean_stretch = stretch.mean();
    report.p99_stretch = stretch.percentile(0.99);
    report.max_stretch = stretch.max();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  gate_failures(report.failures, scheme.name());
  return report;
}

/// Pretty banner for a bench section.
void print_banner(const std::string& experiment, const std::string& artifact,
                  const std::string& what);

}  // namespace rtr::bench

#endif  // RTR_BENCH_COMMON_H
