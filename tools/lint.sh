#!/usr/bin/env bash
# Custom repo lint: rules clang-tidy cannot express, kept fast enough for
# every push.  Each rule greps the tree and fails with the offending lines;
# files with a legitimate need are allowlisted here, next to the reason.
#
# Usage: tools/lint.sh  (from anywhere; operates on the repo the script
# lives in).  Exit 0 = clean, 1 = violations, with one header per rule.
set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  # $1 = rule name, $2 = offending lines (possibly empty)
  if [ -n "$2" ]; then
    echo "lint: $1:" >&2
    echo "$2" | sed 's/^/  /' >&2
    fail=1
  fi
}

# --- rule: no raw new/delete outside the placement arenas ------------------
# The Packet small-buffer arena (net/scheme.h/.cpp) and the deliberately
# leaked process-lifetime caches are the only owners of raw allocations;
# everything else goes through containers or make_shared/make_unique.
# rtz3_repair.cpp / full_table.cpp: the repair splice path constructs its
# scheme through a private friend-only constructor, which make_shared
# cannot reach -- the raw new is immediately owned by a shared_ptr.
raw_new=$(grep -rnE '(^|[^_[:alnum:]])(new|delete)[[:space:]]+[A-Za-z:_<]' \
  src tools tests bench examples \
  --include='*.cpp' --include='*.h' 2>/dev/null |
  grep -vE '^(src/net/scheme\.(h|cpp)|tests/test_support\.h):' |
  grep -vE '^(src/rtz/rtz3_repair\.cpp|src/baseline/full_table\.cpp):' |
  grep -vE '//.*(new|delete)')
report "raw new/delete outside the Packet arena and leaked caches" "$raw_new"

# --- rule: no std::rand / rand() -------------------------------------------
# All randomness flows through util/rng.h (seeded, reproducible); libc rand
# would silently break the benchmark harness's determinism contract.
rand_use=$(grep -rnE '(std::rand|[^_[:alnum:]]s?rand)\(' \
  src tools tests bench examples \
  --include='*.cpp' --include='*.h' 2>/dev/null)
report "std::rand/rand(); use util/rng.h (deterministic, seeded)" "$rand_use"

# --- rule: no naked memcpy into snapshot payloads --------------------------
# Snapshot bytes must go through SnapshotWriter/SnapshotReader so the
# little-endian framing and bounds checks hold on every platform.  The single
# allowed site is SnapshotReader::read_exact (bounds-checked BEFORE copying),
# marked with "rtr-lint: checked-copy"; even the rest of the format layer has
# to route through it, so a truncated or short-mapped region can never be
# read past its end.
raw_memcpy=$(grep -rnE 'memcpy' \
  src tools --include='*.cpp' --include='*.h' 2>/dev/null |
  grep -vE 'rtr-lint: checked-copy' |
  grep -vE '//.*memcpy')
report "memcpy outside io/snapshot_format.h (use the typed writer/reader)" \
  "$raw_memcpy"

# --- rule: src/util headers are self-contained -----------------------------
# Every utility header must compile on its own (no hidden include-order
# dependencies); gate on a C++ compiler being present so the script also
# runs on boxes without the toolchain.
CXX_BIN="${CXX:-}"
if [ -z "$CXX_BIN" ]; then
  for candidate in c++ g++ clang++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX_BIN=$candidate
      break
    fi
  done
fi
if [ -n "$CXX_BIN" ]; then
  for header in src/util/*.h; do
    if ! out=$(echo "#include \"${header#src/}\"" |
      "$CXX_BIN" -fsyntax-only -x c++ -std=c++20 -I src - 2>&1); then
      report "header not self-contained: $header" "$out"
    fi
  done
else
  echo "lint: note: no C++ compiler found; skipping header self-containment" >&2
fi

if [ "$fail" -eq 0 ]; then
  echo "lint: clean"
fi
exit "$fail"
