// rtr_cli -- command-line front end for the library.
//
//   rtr_cli list
//       Print every scheme registered with the global SchemeRegistry.
//   rtr_cli generate <family> <n> <max_weight> <seed>
//       Emit an edge list for a synthetic strongly connected digraph.
//   rtr_cli route <scheme> <src> <dst> [seed]  < graph.edges
//       Build a scheme over the edge list on stdin and run one roundtrip
//       (src/dst are internal node ids; the packet is addressed by the
//       node's TINN name).
//   rtr_cli stats <scheme> [seed]  < graph.edges
//       Print per-node table statistics for the scheme.
//   rtr_cli bench <scheme> <family> <n> [pairs] [threads] [seed]
//       Generate an instance, run a sampled batch through the QueryEngine,
//       and emit a one-line JSON report.
//   rtr_cli snapshot save <scheme> <path> <family> <n> [seed]
//       Build the scheme over a generated instance and freeze it (graph,
//       names, tables) into a versioned binary snapshot at <path>.
//   rtr_cli snapshot load <path> [src dst]
//       Load a snapshot into a ready-to-serve handle; optionally run one
//       roundtrip query against it.
//   rtr_cli snapshot info <path>
//       Probe framing and per-section checksums; print the header and the
//       section table with each section's CRC status.  Non-zero exit when
//       any section is damaged.
//   rtr_cli snapshot pack <in> <out>
//       Repack any loadable snapshot (v1 or v2) as a v2 relocatable arena
//       at <out> -- the migration path that makes old caches mmap-able.
//   rtr_cli snapshot map-info <path>
//       mmap(2) a v2 arena in place (the zero-copy serving path), verify
//       every section CRC against the directory, and print the mapped
//       layout: per-section offset, element size/count, and CRC.  Non-zero
//       exit when the file cannot be mapped or any CRC fails.
//   rtr_cli audit <scheme> <family> <n> [seed]
//       Build the scheme over a generated instance and run the deep
//       invariant auditor over the graph, the naming, and every scheme
//       substructure.  Non-zero exit on any violated invariant.
//   rtr_cli audit <file.rtrsnap>
//       Audit a snapshot file in place: framing, per-section CRCs, and
//       cross-section referential integrity, without building the scheme.
//   rtr_cli snapshot bench <scheme> <family> <n> [pairs] [seed]
//       Measure build-vs-load: construct the scheme (timed), save it, load
//       it back (timed), check the loaded handle answers a sampled batch
//       identically, and emit a one-line JSON report with the speedup.
//   rtr_cli churn <scheme> <family> <n> [epochs] [threads] [seed]
//       Live-churn serving: build an EpochManager, then churn the topology
//       through `epochs` background rebuilds while query threads hammer
//       name-keyed roundtrips nonstop.  Emits a one-line JSON report with
//       availability (queries served during rebuilds, failures) and
//       per-epoch stretch continuity.
//
// <scheme> is any registered name (see `rtr_cli list`), e.g. stretch6,
// stretch6-detour, exstretch, polystretch, rtz3, fulltable, hashed64.
//
// Exit status: 0 on success, 1 on routing failure, 2 on usage errors.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "graph/apsp.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "io/snapshot.h"
#include "net/query_engine.h"
#include "net/scheme.h"
#include "rt/metric.h"
#include "serve/churn_harness.h"

namespace {

using namespace rtr;

int usage() {
  std::cerr << "usage: rtr_cli [--threads N] <command> ...\n"
            << "  (--threads: APSP worker pool width; 0/default = hardware "
               "concurrency)\n"
            << "  rtr_cli list\n"
            << "  rtr_cli generate <random|grid|ring|scalefree|bidirected> "
               "<n> <max_weight> <seed>\n"
            << "  rtr_cli route <scheme> <src> <dst> [seed]  < graph.edges\n"
            << "  rtr_cli stats <scheme> [seed]  < graph.edges\n"
            << "  rtr_cli bench <scheme> <family> <n> [pairs] [threads] "
               "[seed]\n"
            << "  rtr_cli snapshot save <scheme> <path> <family> <n> [seed]\n"
            << "  rtr_cli snapshot load <path> [src dst]\n"
            << "  rtr_cli snapshot info <path>\n"
            << "  rtr_cli snapshot pack <in> <out>\n"
            << "  rtr_cli snapshot map-info <path>\n"
            << "  rtr_cli snapshot bench <scheme> <family> <n> [pairs] "
               "[seed]\n"
            << "  rtr_cli audit <scheme> <family> <n> [seed]\n"
            << "  rtr_cli audit <file.rtrsnap>\n"
            << "  rtr_cli churn <scheme> <family> <n> [epochs] [threads] "
               "[seed]\n"
            << "  scheme:";
  for (const auto& name : SchemeRegistry::global().names()) {
    std::cerr << ' ' << name;
  }
  std::cerr << "\n";
  return 2;
}

Family parse_family(const std::string& s) {
  if (s == "random") return Family::kRandom;
  if (s == "grid") return Family::kGrid;
  if (s == "ring") return Family::kRing;
  if (s == "scalefree") return Family::kScaleFree;
  if (s == "bidirected") return Family::kBidirected;
  throw std::invalid_argument("unknown family: " + s);
}

/// Instance over a generated family graph, shared-ownership pieces as the
/// engine wants them.
BuildContext family_context(Family family, NodeId n, Weight max_weight,
                            std::uint64_t seed) {
  Rng rng(seed);
  return BuildContext::for_graph(make_family(family, n, max_weight, rng), seed);
}

int run_list() {
  const auto& registry = SchemeRegistry::global();
  for (const auto& name : registry.names()) {
    std::cout << name << "\t" << registry.summary(name) << "\n";
  }
  return 0;
}

int run_route(const std::string& scheme_name, NodeId src, NodeId dst,
              std::uint64_t seed) {
  BuildContext ctx = BuildContext::for_graph(read_edge_list(std::cin), seed);
  if (src < 0 || src >= ctx.graph->node_count() || dst < 0 ||
      dst >= ctx.graph->node_count()) {
    std::cerr << "node id out of range\n";
    return 2;
  }
  QueryEngine engine =
      QueryEngine::from_registry(SchemeRegistry::global(), scheme_name, ctx);
  const ServingResult served = engine.serve(src, dst);
  if (!served.ok()) {
    std::cerr << "route failed (" << serving_error_name(served.error)
              << "): " << served.message << "\n";
    return 1;
  }
  const RouteResult& res = served.route;
  const Dist r = ctx.metric->r(src, dst);
  std::cout << "scheme:     " << engine.scheme().name() << "\n"
            << "delivered:  yes\n"
            << "out:        " << res.out_length << " (" << res.out_hops
            << " hops)\n"
            << "back:       " << res.back_length << " (" << res.back_hops
            << " hops)\n"
            << "optimal r:  " << r << "\n"
            << "stretch:    "
            << (r > 0 ? static_cast<double>(res.roundtrip_length()) /
                            static_cast<double>(r)
                      : 1.0)
            << "\n"
            << "header bits: " << res.max_header_bits << "\n";
  return 0;
}

int run_stats(const std::string& scheme_name, std::uint64_t seed) {
  BuildContext ctx = BuildContext::for_graph(read_edge_list(std::cin), seed);
  auto scheme = SchemeRegistry::global().build(scheme_name, ctx);
  std::cout << scheme->name() << ": " << scheme->table_stats().brief() << "\n";
  return 0;
}

int run_bench(const std::string& scheme_name, const std::string& family,
              NodeId n, std::int64_t pairs, int threads, std::uint64_t seed) {
  BuildContext ctx = family_context(parse_family(family), n, 4, seed);
  QueryEngineOptions opts;
  opts.threads = threads;
  QueryEngine engine = QueryEngine::from_registry(SchemeRegistry::global(),
                                                  scheme_name, ctx, opts);
  BatchOptions batch;
  batch.pair_budget = pairs;
  batch.seed = seed + 1;
  StretchReport rep = engine.run_sampled(batch);
  std::cout << "{\"scheme\":\"" << scheme_name << "\",\"family\":\"" << family
            << "\",\"n\":" << ctx.graph->node_count() << ",\"pairs\":"
            << rep.pairs << ",\"failures\":" << rep.failures
            << ",\"invalid\":" << rep.invalid << ",\"first_error\":\""
            << json_escape(rep.first_error) << "\""
            << ",\"mean_stretch\":" << rep.mean_stretch
            << ",\"p99_stretch\":" << rep.p99_stretch
            << ",\"max_stretch\":" << rep.max_stretch
            << ",\"max_header_bits\":" << rep.max_header_bits
            << ",\"threads\":" << engine.worker_count()
            << ",\"wall_seconds\":" << rep.wall_seconds << "}\n";
  return rep.failures == 0 ? 0 : 1;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void print_snapshot_info(const SnapshotInfo& info) {
  std::cout << "scheme:   " << info.scheme << "\n"
            << "version:  " << info.version << "\n"
            << "nodes:    " << info.node_count << "\n"
            << "edges:    " << info.edge_count << "\n"
            << "bytes:    " << info.file_bytes << "\n"
            << "sections:\n";
  for (const auto& s : info.sections) {
    std::printf("  %-8s %12llu bytes  crc32 %08x\n", s.name.c_str(),
                static_cast<unsigned long long>(s.bytes), s.crc);
  }
}

/// Probe-based `snapshot info`: prints the header and every section with its
/// CRC health; returns non-zero when the file is damaged anywhere.
int run_snapshot_info(const std::string& path) {
  const SnapshotFileStatus status = probe_snapshot(path);
  if (!status.framing_error.empty() && status.scheme.empty()) {
    std::cout << "file:     " << path << "\n"
              << "bytes:    " << status.file_bytes << "\n"
              << "framing:  BAD (" << status.framing_error << ")\n";
    return 1;
  }
  std::cout << "scheme:   " << status.scheme << "\n"
            << "version:  " << status.version << "\n"
            << "nodes:    " << status.node_count << "\n"
            << "edges:    " << status.edge_count << "\n"
            << "bytes:    " << status.file_bytes << "\n"
            << "framing:  "
            << (status.framing_ok ? "ok" : "BAD (" + status.framing_error + ")")
            << "\n"
            << "sections:\n";
  for (const auto& s : status.sections) {
    if (s.crc_ok) {
      std::printf("  %-8s %12llu bytes  crc32 %08x  ok\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.bytes), s.stored_crc);
    } else {
      std::printf("  %-8s %12llu bytes  crc32 %08x  BAD (recomputed %08x)\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.bytes),
                  s.stored_crc, s.actual_crc);
    }
  }
  return status.all_ok() ? 0 : 1;
}

/// `snapshot pack`: load any version with full verification, re-save as a
/// v2 arena.  The registry name comes from the file itself, so packing
/// needs no scheme argument.
int run_snapshot_pack(const std::string& in, const std::string& out) {
  const SnapshotInfo info = inspect_snapshot(in);
  SchemeHandle handle = load_snapshot(in, info.scheme);
  save_snapshot(out, info.scheme, handle, SchemeRegistry::global(),
                kSnapshotVersionV2);
  std::cout << "packed " << in << " (v" << info.version << ") -> " << out
            << " (v" << kSnapshotVersionV2 << ")\n";
  print_snapshot_info(inspect_snapshot(out));
  return 0;
}

/// `snapshot map-info`: the zero-copy path end to end -- mmap, framing
/// validation (ArenaView construction), then the full per-section CRC sweep
/// the mapped serving path deliberately skips.
int run_snapshot_map_info(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const ArenaView view{map_arena_file(path)};
  const double map_seconds = seconds_since(start);
  view.verify_section_crcs();
  std::cout << "scheme:   " << view.scheme() << "\n"
            << "version:  " << kArenaFormatVersion << " (relocatable arena)\n"
            << "nodes:    " << view.header().node_count << "\n"
            << "edges:    " << view.header().edge_count << "\n"
            << "bytes:    " << view.file_bytes() << "\n"
            << "mapped:   in " << map_seconds
            << " s (framing + header/dir CRC)\n"
            << "sections: (all payload CRCs verified ok)\n";
  for (const ArenaDirEntry& e : view.entries()) {
    std::printf("  %-31s @%-10llu %10llu x %2u bytes  crc32 %08x\n",
                e.name_str().c_str(), static_cast<unsigned long long>(e.offset),
                static_cast<unsigned long long>(e.count), e.elem_size, e.crc);
  }
  return 0;
}

int run_audit_build(const std::string& scheme_name, const std::string& family,
                    NodeId n, std::uint64_t seed) {
  BuildContext ctx = family_context(parse_family(family), n, 4, seed);
  SchemeHandle handle(ctx.graph, ctx.names,
                      SchemeRegistry::global().build(scheme_name, ctx));
  AuditReport report;
  audit_handle(handle, report);
  std::cout << handle.name() << "\n" << report.summary(true);
  return report.ok() ? 0 : 1;
}

int run_audit_snapshot(const std::string& path) {
  AuditReport report;
  audit_snapshot_file(path, report);
  std::cout << path << "\n" << report.summary(true);
  return report.ok() ? 0 : 1;
}

int run_snapshot_save(const std::string& scheme_name, const std::string& path,
                      const std::string& family, NodeId n, std::uint64_t seed) {
  BuildContext ctx = family_context(parse_family(family), n, 4, seed);
  SchemeHandle handle(ctx.graph, ctx.names,
                      SchemeRegistry::global().build(scheme_name, ctx));
  save_snapshot(path, scheme_name, handle);
  print_snapshot_info(inspect_snapshot(path));
  return 0;
}

int run_snapshot_load(const std::string& path, NodeId src, NodeId dst) {
  const auto start = std::chrono::steady_clock::now();
  SchemeHandle handle = load_snapshot(path);
  const double load_seconds = seconds_since(start);
  print_snapshot_info(inspect_snapshot(path));
  std::cout << "loaded:   " << handle.name() << " in " << load_seconds
            << " s\n";
  if (src == kNoNode) return 0;
  if (src < 0 || src >= handle.graph().node_count() || dst < 0 ||
      dst >= handle.graph().node_count()) {
    std::cerr << "node id out of range\n";
    return 2;
  }
  auto res = handle.roundtrip(src, dst);
  std::cout << "query:    " << src << " -> " << dst << " -> " << src
            << (res.ok() ? " delivered" : " FAILED") << ", roundtrip length "
            << res.roundtrip_length() << " (" << res.out_hops + res.back_hops
            << " hops)\n";
  return res.ok() ? 0 : 1;
}

int run_snapshot_bench(const std::string& scheme_name,
                       const std::string& family, NodeId n, std::int64_t pairs,
                       std::uint64_t seed) {
  // PID-suffixed so concurrent benches (e.g. parallel CI jobs on one host)
  // never race on the same scratch file.
  const std::string path = "/tmp/rtr_snapshot_bench_" + scheme_name + "_" +
                           std::to_string(n) + "_" +
                           std::to_string(::getpid()) + ".rtrsnap";
  std::remove(path.c_str());

  // Build path, timed end to end the way a cold process would pay it:
  // graph generation is excluded (both paths need a workload), but APSP,
  // naming, and table construction all count.
  Rng graph_rng(seed);
  GraphBuilder g = make_family(parse_family(family), n, 4, graph_rng);
  const auto build_start = std::chrono::steady_clock::now();
  BuildContext ctx = BuildContext::for_graph(std::move(g), seed);
  SchemeHandle built(ctx.graph, ctx.names,
                     SchemeRegistry::global().build(scheme_name, ctx));
  const double build_seconds = seconds_since(build_start);

  const auto save_start = std::chrono::steady_clock::now();
  save_snapshot(path, scheme_name, built);
  const double save_seconds = seconds_since(save_start);

  const auto load_start = std::chrono::steady_clock::now();
  SchemeHandle loaded = load_snapshot(path, scheme_name);
  const double load_seconds = seconds_since(load_start);

  // Differential check: the loaded handle must answer sampled roundtrips
  // route-for-route like the freshly built one.
  std::int64_t failures = 0, mismatches = 0;
  const NodeId nodes = built.graph().node_count();
  const auto queries = QueryEngine::sample_pairs(nodes, pairs, seed + 1);
  pairs = static_cast<std::int64_t>(queries.size());
  for (const RoundtripQuery& q : queries) {
    const auto [s, t] = q;
    auto ra = built.roundtrip(s, t);
    auto rb = loaded.roundtrip(s, t);
    if (!ra.ok() || !rb.ok()) ++failures;
    if (ra.roundtrip_length() != rb.roundtrip_length() ||
        ra.out_hops != rb.out_hops || ra.back_hops != rb.back_hops) {
      ++mismatches;
    }
  }

  const SnapshotInfo info = inspect_snapshot(path);
  const double speedup =
      load_seconds > 0 ? build_seconds / load_seconds : build_seconds / 1e-9;
  std::cout << "{\"scheme\":\"" << scheme_name << "\",\"family\":\"" << family
            << "\",\"n\":" << built.graph().node_count()
            << ",\"build_seconds\":" << build_seconds
            << ",\"save_seconds\":" << save_seconds
            << ",\"load_seconds\":" << load_seconds
            << ",\"speedup\":" << speedup
            << ",\"file_bytes\":" << info.file_bytes << ",\"pairs\":" << pairs
            << ",\"failures\":" << failures
            << ",\"mismatches\":" << mismatches
            << ",\"answers_match\":" << (mismatches == 0 ? "true" : "false")
            << "}\n";
  std::remove(path.c_str());
  return mismatches == 0 && failures == 0 ? 0 : 1;
}

int run_churn(const std::string& scheme_name, const std::string& family,
              NodeId n, int epochs, int hammer_threads, std::uint64_t seed) {
  Rng graph_rng(seed);
  GraphBuilder builder = make_family(parse_family(family), n, 4, graph_rng);
  builder.assign_adversarial_ports(graph_rng);
  Digraph g = builder.freeze();
  Rng name_rng(seed + 1);
  NameAssignment names = NameAssignment::random(g.node_count(), name_rng);

  ChurnRunOptions opts;
  opts.scheme = scheme_name;
  opts.epochs = epochs;
  opts.hammer_threads = hammer_threads;
  opts.seed = seed;
  opts.churn.rehome_nodes = std::max<NodeId>(1, g.node_count() / 50);
  opts.extra_json_fields = "\"family\":\"" + family + "\",";
  ChurnRunResult result =
      run_churn_workload(std::move(g), std::move(names), opts);
  if (!result.last_error.empty()) {
    std::cerr << "churn: " << result.last_error << "\n";
  }
  std::cout << result.json << "\n";
  return result.ok(epochs) ? 0 : 1;
}

int run_snapshot(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "save") {
    if (argc < 7 || argc > 8) return usage();
    const std::uint64_t seed =
        argc == 8 ? std::stoull(argv[7]) : std::uint64_t{1};
    return run_snapshot_save(argv[3], argv[4], argv[5],
                             static_cast<NodeId>(std::stol(argv[6])), seed);
  }
  if (sub == "load") {
    if (argc != 4 && argc != 6) return usage();
    NodeId src = kNoNode, dst = kNoNode;
    if (argc == 6) {
      src = static_cast<NodeId>(std::stol(argv[4]));
      dst = static_cast<NodeId>(std::stol(argv[5]));
    }
    return run_snapshot_load(argv[3], src, dst);
  }
  if (sub == "info") {
    if (argc != 4) return usage();
    return run_snapshot_info(argv[3]);
  }
  if (sub == "pack") {
    if (argc != 5) return usage();
    return run_snapshot_pack(argv[3], argv[4]);
  }
  if (sub == "map-info") {
    if (argc != 4) return usage();
    return run_snapshot_map_info(argv[3]);
  }
  if (sub == "bench") {
    if (argc < 6 || argc > 8) return usage();
    const std::int64_t pairs = argc > 6 ? std::stoll(argv[6]) : 2000;
    const std::uint64_t seed =
        argc > 7 ? std::stoull(argv[7]) : std::uint64_t{1};
    return run_snapshot_bench(argv[3], argv[4],
                              static_cast<NodeId>(std::stol(argv[5])), pairs,
                              seed);
  }
  return usage();
}

int main_inner(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    if (argc != 2) return usage();
    return run_list();
  }

  if (cmd == "generate") {
    if (argc != 6) return usage();
    Rng rng(static_cast<std::uint64_t>(std::stoull(argv[5])));
    const Digraph g = make_family(parse_family(argv[2]),
                                  static_cast<NodeId>(std::stol(argv[3])),
                                  static_cast<Weight>(std::stoll(argv[4])), rng)
                          .freeze();
    write_edge_list(std::cout, g);
    return 0;
  }

  if (cmd == "route") {
    if (argc < 5 || argc > 6) return usage();
    const std::uint64_t seed =
        argc == 6 ? std::stoull(argv[5]) : std::uint64_t{1};
    return run_route(argv[2], static_cast<NodeId>(std::stol(argv[3])),
                     static_cast<NodeId>(std::stol(argv[4])), seed);
  }

  if (cmd == "stats") {
    if (argc < 3 || argc > 4) return usage();
    const std::uint64_t seed =
        argc == 4 ? std::stoull(argv[3]) : std::uint64_t{1};
    return run_stats(argv[2], seed);
  }

  if (cmd == "snapshot") {
    return run_snapshot(argc, argv);
  }

  if (cmd == "audit") {
    // One operand: a snapshot file.  Three or four: scheme/family/n/[seed].
    if (argc == 3) return run_audit_snapshot(argv[2]);
    if (argc < 5 || argc > 6) return usage();
    const std::uint64_t seed =
        argc == 6 ? std::stoull(argv[5]) : std::uint64_t{1};
    return run_audit_build(argv[2], argv[3],
                           static_cast<NodeId>(std::stol(argv[4])), seed);
  }

  if (cmd == "churn") {
    if (argc < 5 || argc > 8) return usage();
    const int epochs = argc > 5 ? std::stoi(argv[5]) : 3;
    const int threads = argc > 6 ? std::stoi(argv[6]) : 4;
    const std::uint64_t seed =
        argc > 7 ? std::stoull(argv[7]) : std::uint64_t{1};
    return run_churn(argv[2], argv[3], static_cast<NodeId>(std::stol(argv[4])),
                     epochs, threads, seed);
  }

  if (cmd == "bench") {
    if (argc < 5 || argc > 8) return usage();
    const std::int64_t pairs = argc > 5 ? std::stoll(argv[5]) : 2000;
    const int threads = argc > 6 ? std::stoi(argv[6]) : 0;
    const std::uint64_t seed =
        argc > 7 ? std::stoull(argv[7]) : std::uint64_t{1};
    return run_bench(argv[2], argv[3], static_cast<NodeId>(std::stol(argv[4])),
                     pairs, threads, seed);
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Global flag, valid before the subcommand: --threads N sets the
    // process-wide APSP pool width (0 = hardware concurrency, the default).
    std::vector<char*> args(argv, argv + argc);
    for (std::size_t i = 1; i + 1 < args.size(); ++i) {
      if (std::string(args[i]) == "--threads") {
        set_default_apsp_threads(std::stoi(args[i + 1]));
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        break;
      }
    }
    return main_inner(static_cast<int>(args.size()), args.data());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
