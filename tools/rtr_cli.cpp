// rtr_cli -- command-line front end for the library.
//
//   rtr_cli generate <family> <n> <max_weight> <seed>
//       Emit an edge list for a synthetic strongly connected digraph.
//   rtr_cli route <scheme> <src> <dst> [seed]  < graph.edges
//       Build a scheme over the edge list on stdin and run one roundtrip
//       (src/dst are internal node ids; the packet is addressed by the
//       node's TINN name).  scheme: stretch6 | exstretch | polystretch |
//       rtz3 | fulltable.
//   rtr_cli stats <scheme> [seed]  < graph.edges
//       Print per-node table statistics for the scheme.
//
// Exit status: 0 on success, 1 on routing failure, 2 on usage errors.
#include <iostream>
#include <string>

#include "baseline/full_table.h"
#include "core/exstretch.h"
#include "core/names.h"
#include "core/polystretch.h"
#include "core/stretch6.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/scc.h"
#include "net/simulator.h"
#include "rt/metric.h"
#include "rtz/rtz3_scheme.h"

namespace {

using namespace rtr;

int usage() {
  std::cerr << "usage:\n"
            << "  rtr_cli generate <random|grid|ring|scalefree|bidirected> "
               "<n> <max_weight> <seed>\n"
            << "  rtr_cli route <scheme> <src> <dst> [seed]  < graph.edges\n"
            << "  rtr_cli stats <scheme> [seed]  < graph.edges\n"
            << "  scheme: stretch6 | exstretch | polystretch | rtz3 | fulltable\n";
  return 2;
}

Family parse_family(const std::string& s) {
  if (s == "random") return Family::kRandom;
  if (s == "grid") return Family::kGrid;
  if (s == "ring") return Family::kRing;
  if (s == "scalefree") return Family::kScaleFree;
  if (s == "bidirected") return Family::kBidirected;
  throw std::invalid_argument("unknown family: " + s);
}

struct LoadedGraph {
  Digraph graph{0};
  NameAssignment names = NameAssignment::identity(0);
  RoundtripMetric metric;

  explicit LoadedGraph(std::uint64_t seed, Digraph g_in)
      : graph(std::move(g_in)), metric([&] {
          if (!is_strongly_connected(graph)) {
            throw std::runtime_error("input graph is not strongly connected");
          }
          Rng rng(seed);
          graph.assign_adversarial_ports(rng);
          names = NameAssignment::random(graph.node_count(), rng);
          return RoundtripMetric(graph);
        }()) {}
};

template <typename Scheme>
int run_route(const LoadedGraph& lg, const Scheme& scheme, NodeId src,
              NodeId dst) {
  auto res = simulate_roundtrip(lg.graph, scheme, src, dst,
                                lg.names.name_of(dst));
  std::cout << "delivered:  " << (res.ok() ? "yes" : "NO") << "\n"
            << "out:        " << res.out_length << " (" << res.out_hops
            << " hops)\n"
            << "back:       " << res.back_length << " (" << res.back_hops
            << " hops)\n"
            << "optimal r:  " << lg.metric.r(src, dst) << "\n"
            << "stretch:    "
            << (lg.metric.r(src, dst) > 0
                    ? static_cast<double>(res.roundtrip_length()) /
                          static_cast<double>(lg.metric.r(src, dst))
                    : 1.0)
            << "\n"
            << "header bits: " << res.max_header_bits << "\n";
  return res.ok() ? 0 : 1;
}

template <typename F>
int with_scheme(const std::string& name, const LoadedGraph& lg, Rng& rng,
                F&& f) {
  if (name == "stretch6") {
    return f(Stretch6Scheme(lg.graph, lg.metric, lg.names, rng));
  }
  if (name == "exstretch") {
    return f(ExStretchScheme(lg.graph, lg.metric, lg.names, rng));
  }
  if (name == "polystretch") {
    return f(PolyStretchScheme(lg.graph, lg.metric, lg.names));
  }
  if (name == "rtz3") {
    return f(Rtz3Scheme(lg.graph, lg.metric, lg.names, rng));
  }
  if (name == "fulltable") {
    return f(FullTableScheme(lg.graph, lg.names));
  }
  throw std::invalid_argument("unknown scheme: " + name);
}

int main_inner(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "generate") {
    if (argc != 6) return usage();
    Rng rng(static_cast<std::uint64_t>(std::stoull(argv[5])));
    Digraph g = make_family(parse_family(argv[2]),
                            static_cast<NodeId>(std::stol(argv[3])),
                            static_cast<Weight>(std::stoll(argv[4])), rng);
    write_edge_list(std::cout, g);
    return 0;
  }

  if (cmd == "route") {
    if (argc < 5 || argc > 6) return usage();
    const std::uint64_t seed =
        argc == 6 ? std::stoull(argv[5]) : std::uint64_t{1};
    LoadedGraph lg(seed, read_edge_list(std::cin));
    const auto src = static_cast<NodeId>(std::stol(argv[3]));
    const auto dst = static_cast<NodeId>(std::stol(argv[4]));
    if (src < 0 || src >= lg.graph.node_count() || dst < 0 ||
        dst >= lg.graph.node_count()) {
      std::cerr << "node id out of range\n";
      return 2;
    }
    Rng rng(seed + 1);
    return with_scheme(argv[2], lg, rng, [&](const auto& scheme) {
      return run_route(lg, scheme, src, dst);
    });
  }

  if (cmd == "stats") {
    if (argc < 3 || argc > 4) return usage();
    const std::uint64_t seed =
        argc == 4 ? std::stoull(argv[3]) : std::uint64_t{1};
    LoadedGraph lg(seed, read_edge_list(std::cin));
    Rng rng(seed + 1);
    return with_scheme(argv[2], lg, rng, [&](const auto& scheme) {
      std::cout << scheme.name() << ": " << scheme.table_stats().brief()
                << "\n";
      return 0;
    });
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_inner(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
