// rtr_loadgen -- drives rtr_routed over TCP and reports qps/p50/p99.
//
//   rtr_loadgen --port P [--host H] [--connections C]
//               [--requests N | --duration-s X] [--qps TARGET]
//               [--binary] [--seed S] [--names N] [--connect-retries R]
//
// Closed loop by default (each connection fires its next request as soon as
// the previous answer lands); --qps switches to open loop, where requests
// launch on a fixed schedule and latency is charged from the scheduled send
// time.  --binary speaks rtr-wire/1 instead of HTTP.  The node-name space is
// discovered via GET /healthz unless --names is given (required for
// --binary against a server whose /healthz is unreachable).
//
// Prints the rtr-loadgen/1 JSON summary to stdout.  Exit status 0 iff at
// least one request completed AND there were zero failures -- the CI smoke
// gate runs exactly this.
#include <cstdio>
#include <iostream>
#include <string>

#include "server/loadgen.h"

namespace {

using namespace rtr;

bool parse_args(int argc, char** argv, LoadgenOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--host") {
      options.host = next();
    } else if (flag == "--port") {
      options.port = static_cast<int>(std::stol(next()));
    } else if (flag == "--connections") {
      options.connections = static_cast<int>(std::stol(next()));
    } else if (flag == "--requests") {
      options.requests = std::stoll(next());
    } else if (flag == "--duration-s") {
      options.duration_s = std::stod(next());
    } else if (flag == "--qps") {
      options.target_qps = std::stod(next());
    } else if (flag == "--binary") {
      options.binary = true;
    } else if (flag == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (flag == "--names") {
      options.name_count = static_cast<NodeName>(std::stol(next()));
    } else if (flag == "--connect-retries") {
      options.connect_retries = static_cast<int>(std::stol(next()));
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      throw std::runtime_error("unknown flag: " + flag);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    LoadgenOptions options;
    if (!parse_args(argc, argv, options)) {
      std::cout << "usage: rtr_loadgen --port P [--host H] [--connections C]\n"
                   "  [--requests N | --duration-s X] [--qps TARGET]\n"
                   "  [--binary] [--seed S] [--names N] "
                   "[--connect-retries R]\n";
      return 0;
    }
    if (options.port <= 0) {
      std::cerr << "rtr_loadgen: --port is required\n";
      return 2;
    }
    const LoadgenResult result = run_loadgen(options);
    std::cout << result.to_json().dump();
    return result.requests > 0 && result.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rtr_loadgen: " << e.what() << "\n";
    return 2;
  }
}
