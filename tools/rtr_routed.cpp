// rtr_routed -- the network serving daemon.
//
//   rtr_routed [--scheme NAME] [--family random|grid|ring|scale-free|
//              bidirected] [--n N] [--max-weight W] [--seed S]
//              [--metric auto|dense|sparse] [--threads T]
//              [--bind ADDR] [--port P] [--port-file PATH]
//              [--duration-s X] [--churn-interval-s X] [--churn-epochs K]
//              [--repair] [--churn-fraction F] [--acceptors A]
//       Builds the scheme over a generated strongly-connected instance,
//       stands up an EpochManager, and serves GET /route, /healthz, /stats
//       (HTTP/1.1 keep-alive) plus the rtr-wire/1 binary framing on one TCP
//       port.  --port 0 binds an ephemeral port; --port-file publishes the
//       bound port for scripts.  With --churn-interval-s the topology churns
//       and the epoch swaps live under load every interval, up to
//       --churn-epochs swaps -- queries keep answering throughout.
//       --repair switches the churn to port-stable and routes small deltas
//       through incremental epoch repair (O(affected region) instead of a
//       full preprocess); /stats reports repairs / repair_fallbacks /
//       last_repair_ms either way.  --churn-fraction caps the per-epoch
//       edge churn rate (default ~30%; keep it under the 5% repair
//       threshold for --repair to actually repair).
//
//   rtr_routed --snapshot FILE [--mapped] [--scheme NAME] ...
//       Serves a prebuilt .rtrsnap dataset instead of building: the OSRM
//       routed-over-prebuilt-dataset mode.  --mapped serves straight off an
//       mmap of the file (v2 snapshots).
//
// On exit (duration elapsed or SIGINT/SIGTERM) the final /stats document is
// printed to stdout.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "graph/churn.h"
#include "graph/generators.h"
#include "io/snapshot.h"
#include "serve/epoch_manager.h"
#include "server/route_server.h"

namespace {

using namespace rtr;

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

struct Args {
  std::string scheme = "stretch6";
  std::string family = "random";
  NodeId n = 256;
  Weight max_weight = 16;
  std::uint64_t seed = 1;
  std::string metric = "auto";
  int threads = 0;
  std::string bind = "127.0.0.1";
  int port = 0;
  std::string port_file;
  double duration_s = 0;  // 0 = run until signal
  double churn_interval_s = 0;
  int churn_epochs = 0;
  bool repair = false;  // incremental epoch repair for small churn deltas
  double churn_fraction = -1;  // <0: the ChurnOptions defaults (~30%/epoch)
  int acceptors = 1;
  std::string snapshot;
  bool mapped = false;
};

Family parse_family_arg(const std::string& s) {
  if (s == "random") return Family::kRandom;
  if (s == "grid") return Family::kGrid;
  if (s == "ring") return Family::kRing;
  if (s == "scale-free") return Family::kScaleFree;
  if (s == "bidirected") return Family::kBidirected;
  throw std::runtime_error("unknown family: " + s);
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--scheme") {
      args.scheme = next();
    } else if (flag == "--family") {
      args.family = next();
    } else if (flag == "--n") {
      args.n = static_cast<NodeId>(std::stol(next()));
    } else if (flag == "--max-weight") {
      args.max_weight = static_cast<Weight>(std::stoll(next()));
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (flag == "--metric") {
      args.metric = next();
    } else if (flag == "--threads") {
      args.threads = static_cast<int>(std::stol(next()));
    } else if (flag == "--bind") {
      args.bind = next();
    } else if (flag == "--port") {
      args.port = static_cast<int>(std::stol(next()));
    } else if (flag == "--port-file") {
      args.port_file = next();
    } else if (flag == "--duration-s") {
      args.duration_s = std::stod(next());
    } else if (flag == "--churn-interval-s") {
      args.churn_interval_s = std::stod(next());
    } else if (flag == "--churn-epochs") {
      args.churn_epochs = static_cast<int>(std::stol(next()));
    } else if (flag == "--repair") {
      args.repair = true;
    } else if (flag == "--churn-fraction") {
      args.churn_fraction = std::stod(next());
    } else if (flag == "--acceptors") {
      args.acceptors = static_cast<int>(std::stol(next()));
    } else if (flag == "--snapshot") {
      args.snapshot = next();
    } else if (flag == "--mapped") {
      args.mapped = true;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      throw std::runtime_error("unknown flag: " + flag);
    }
  }
  return true;
}

void write_port_file(const std::string& path, int port) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
}

int serve(const Args& args, const ServingSource& source,
          EpochManager* manager, Digraph* topology) {
  RouteServerOptions server_options;
  server_options.bind_address = args.bind;
  server_options.port = args.port;
  server_options.acceptor_threads = args.acceptors;
  RouteServer server(source, server_options);

  std::cout << "rtr_routed serving " << source.scheme_name() << " over "
            << source.names().node_count() << " nodes on " << args.bind << ":"
            << server.port() << std::endl;
  write_port_file(args.port_file, server.port());

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  Rng churn_rng(args.seed + 1000);
  ChurnOptions churn;
  // Incremental repair only pays off when the adversary is not renumbering
  // every port each epoch (a global relabel touches every edge, so the
  // delta always exceeds the repair threshold); --repair therefore churns
  // port-stable and lets the EpochManager route small deltas through
  // SchemeRegistry::repair().
  churn.reassign_ports = !args.repair;
  if (args.churn_fraction >= 0) {
    // Split the requested per-epoch edge-churn rate between rewires and
    // weight perturbations; a rate under the EpochManager's
    // repair_max_fraction keeps --repair on the repair path instead of
    // falling back (the ChurnOptions defaults churn ~30% of edges).
    churn.rewire_fraction = args.churn_fraction / 2;
    churn.perturb_fraction = args.churn_fraction / 2;
  }
  int swaps = 0;
  double next_churn_at = args.churn_interval_s;
  while (g_stop == 0 &&
         (args.duration_s <= 0 || elapsed() < args.duration_s)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Live epoch swap under load: churn the topology and rebuild while the
    // server keeps answering from the pinned current epoch.
    if (manager != nullptr && topology != nullptr &&
        args.churn_interval_s > 0 &&
        (args.churn_epochs <= 0 || swaps < args.churn_epochs) &&
        elapsed() >= next_churn_at) {
      *topology = churn_step(*topology, churn, churn_rng);
      const std::uint64_t repairs_before = manager->counters().repairs;
      manager->rebuild_now(Digraph(*topology));
      ++swaps;
      next_churn_at += args.churn_interval_s;
      const bool repaired = manager->counters().repairs > repairs_before;
      std::cout << "epoch " << manager->epoch() << " published ("
                << (repaired ? "repair " : "rebuild ")
                << manager->current()->build_seconds << " s)" << std::endl;
    }
  }

  server.stop();
  std::cout << server.stats_json().dump();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  try {
    Args args;
    if (!parse_args(argc, argv, args)) {
      std::cout
          << "usage: rtr_routed [--scheme NAME] [--family F] [--n N]\n"
             "  [--max-weight W] [--seed S] [--metric auto|dense|sparse]\n"
             "  [--threads T] [--bind ADDR] [--port P] [--port-file PATH]\n"
             "  [--duration-s X] [--churn-interval-s X] [--churn-epochs K]\n"
             "  [--repair] [--acceptors A] [--snapshot FILE [--mapped]]\n";
      return 0;
    }

    if (!args.snapshot.empty()) {
      // Prebuilt-dataset mode: one immutable epoch straight from the file.
      SchemeHandle handle =
          args.mapped ? map_snapshot(args.snapshot, args.scheme)
                      : load_snapshot(args.snapshot, args.scheme);
      QueryEngineOptions engine_options;
      engine_options.threads = args.threads;
      auto engine = std::make_shared<const QueryEngine>(
          handle.graph_ptr(), nullptr, handle.names(), handle.scheme_ptr(),
          engine_options);
      const std::string scheme_name = handle.name();
      auto epoch = std::make_shared<const Epoch>(
          0, std::move(handle), nullptr, std::move(engine),
          /*from_cache=*/true, /*build_seconds=*/0.0);
      StaticServingSource source(std::move(epoch), scheme_name);
      return serve(args, source, nullptr, nullptr);
    }

    Rng topo_rng(args.seed);
    GraphBuilder builder =
        make_family(parse_family_arg(args.family), args.n, args.max_weight,
                    topo_rng);
    Digraph graph = builder.freeze();
    Rng name_rng(args.seed + 7);
    NameAssignment names =
        NameAssignment::random(graph.node_count(), name_rng);

    EpochManagerOptions manager_options;
    manager_options.query_threads = args.threads;
    manager_options.scheme_seed = args.seed;
    manager_options.metric_mode = parse_metric_mode(args.metric);
    manager_options.enable_repair = args.repair;
    EpochManager manager(args.scheme, std::move(names), Digraph(graph),
                         manager_options);
    ManagerServingSource source(manager);
    return serve(args, source, &manager, &graph);
  } catch (const std::exception& e) {
    std::cerr << "rtr_routed: " << e.what() << "\n";
    return 1;
  }
}
