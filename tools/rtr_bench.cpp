// rtr_bench -- the unified benchmark orchestrator.
//
//   rtr_bench [--quick|--full] [--out FILE] [--rev REV]
//             [--families a,b,...] [--sizes 128,256,...]
//             [--schemes s1,s2,...] [--pairs N] [--threads N] [--seed S]
//             [--no-snapshot-phase] [--no-deltas] [--no-net-serving]
//       Sweeps schemes x graph families x sizes, measures the construction /
//       batch-query / snapshot-load phases plus table and memory accounting,
//       runs the end-to-end net_serving cell (RouteServer + loadgen over
//       loopback TCP across a live epoch swap), re-measures the recorded
//       hot-path before/after deltas, and writes a schema-versioned
//       BENCH_<rev>.json.
//
//   rtr_bench --check BASELINE CURRENT [--qps-tolerance 0.25]
//             [--delta-floor PCT]
//       The CI perf gate: exits non-zero when CURRENT regresses qps by more
//       than the tolerance on any baseline cell, increases any cell's avg
//       stretch, reports failed queries, or records a hot-path delta below
//       the floor.
//
//   rtr_bench --check-growth FILE
//       The nightly full-sweep gate: exits non-zero when a sqrt-n scheme's
//       bytes/node or build_ms grows faster across the document's sizes than
//       its O~(sqrt n) / O~(n sqrt n) budget allows (growth RATES, so no
//       committed full baseline is needed and hardware drops out).
//
//   rtr_bench --audit [--families ...] [--sizes ...] [--schemes ...]
//             [--rev REV] [--out FILE] [--seed S]
//       Builds every configured scheme x family x size cell, runs the deep
//       invariant auditor over each built artifact, and writes the combined
//       AUDIT_<rev>.json (per-invariant pass/fail plus measured-vs-budget
//       numbers, so CI can archive invariant headroom next to the perf
//       documents).  Non-zero exit when any cell violates any invariant.
//
// Families: random | grid | ring | scale-free | bidirected.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "bench_harness/bench_harness.h"
#include "graph/apsp.h"
#include "graph/generators.h"
#include "net/scheme.h"

namespace {

using namespace rtr;
using namespace rtr::bench_harness;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick|--full] [--out FILE] [--rev REV]\n"
               "          [--families f1,f2] [--sizes n1,n2] [--schemes s1,s2]\n"
               "          [--pairs N] [--threads N (0 = hardware)] [--seed S]\n"
               "          [--metric auto|dense|sparse]\n"
               "          [--no-snapshot-phase] [--no-deltas] "
               "[--no-net-serving]\n"
               "       %s --check BASELINE CURRENT [--qps-tolerance T]\n"
               "          [--delta-floor PCT]\n"
               "       %s --check-growth FILE\n"
               "       %s --audit [--families ...] [--sizes ...] "
               "[--schemes ...] [--rev REV] [--out FILE]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Family family_by_name(const std::string& name) {
  for (const Family f : all_families()) {
    if (family_name(f) == name) return f;
  }
  // Accept the common aliases used in the ISSUE/README.
  if (name == "power-law" || name == "scale_free") return Family::kScaleFree;
  if (name == "ring+chords") return Family::kRing;
  throw std::invalid_argument("unknown family: " + name);
}

int run_growth_check(const std::string& path) {
  const auto doc = Json::parse(read_text_file(path));
  std::vector<std::string> violations;
  try {
    violations = check_growth_budgets(doc);
  } catch (const GrowthGateError& e) {
    // Malformed input (single-size sweep, zero-valued baseline cell):
    // distinct exit code so CI can tell "budget exceeded" (1) from "the gate
    // never ran" (2).
    std::fprintf(stderr, "growth gate INVALID: %s\n", e.what());
    return 2;
  }
  if (violations.empty()) {
    std::printf("growth gate OK: %zu cells in %s within the O~(sqrt n) budgets\n",
                cells_from_json(doc).size(), path.c_str());
    return 0;
  }
  std::fprintf(stderr, "growth gate FAILED (%zu violations):\n",
               violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}

/// `--audit`: one auditor run per configured cell, all folded into one
/// schema-versioned document next to the perf BENCH_*.json artifacts.
int run_audit(const BenchConfig& config, const std::string& rev,
              const std::string& out_path) {

  std::vector<std::string> schemes = config.schemes;
  if (schemes.empty()) schemes = SchemeRegistry::global().names();

  Json doc{JsonObject{}};
  doc.set("schema", "rtr-audit-suite/1");
  doc.set("rev", rev);
  JsonArray cells;
  bool all_ok = true;
  std::int64_t failed_cells = 0;
  for (const Family family : config.families) {
    for (const NodeId n : config.sizes) {
      Rng rng(config.seed);
      BuildContext ctx = BuildContext::for_graph(
          make_family(family, n, 4, rng), config.seed);
      for (const std::string& scheme_name : schemes) {
        SchemeHandle handle(ctx.graph, ctx.names,
                            SchemeRegistry::global().build(scheme_name, ctx));
        AuditReport report;
        audit_handle(handle, report);
        std::cerr << "audit " << scheme_name << " x " << family_name(family)
                  << " n=" << n << ": "
                  << (report.ok() ? "ok" : "FAILED") << " ("
                  << report.total_count() << " invariants)\n";
        if (!report.ok()) {
          std::cerr << report.summary(false);
          ++failed_cells;
          all_ok = false;
        }
        Json cell = Json::parse(report.to_json_string());
        cell.set("scheme", scheme_name);
        cell.set("family", std::string(family_name(family)));
        cell.set("n", static_cast<std::int64_t>(n));
        cells.push_back(std::move(cell));
      }
    }
  }
  doc.set("ok", all_ok);
  doc.set("cells", std::move(cells));
  const std::string path =
      out_path.empty() ? "AUDIT_" + rev + ".json" : out_path;
  write_text_file(path, doc.dump());
  std::printf("wrote %s (%zu cells, %lld failed)\n", path.c_str(),
              config.families.size() * config.sizes.size() * schemes.size(),
              static_cast<long long>(failed_cells));
  return all_ok ? 0 : 1;
}

int run_check(const std::string& baseline_path, const std::string& current_path,
              const GateOptions& options) {
  const auto baseline =
      Json::parse(read_text_file(baseline_path));
  const auto current = Json::parse(read_text_file(current_path));
  std::vector<std::string> notes;
  const std::vector<std::string> violations =
      compare_to_baseline(baseline, current, options, &notes);
  for (const std::string& n : notes) {
    std::fprintf(stderr, "note: %s\n", n.c_str());
  }
  if (violations.empty()) {
    std::printf("perf gate OK: %zu baseline cells checked against %s\n",
                cells_from_json(baseline).size(), current_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "perf gate FAILED (%zu violations):\n",
               violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    BenchConfig config = BenchConfig::quick();
    std::string out_path;
    std::string rev = "dev";
    std::string check_baseline, check_current, check_growth;
    bool audit_mode = false;
    GateOptions gate;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--quick") {
        config = BenchConfig::quick();
      } else if (arg == "--full") {
        config = BenchConfig::full();
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--rev") {
        rev = next();
      } else if (arg == "--families") {
        config.families.clear();
        for (const auto& f : split_csv(next())) {
          config.families.push_back(family_by_name(f));
        }
      } else if (arg == "--sizes") {
        config.sizes.clear();
        for (const auto& s : split_csv(next())) {
          config.sizes.push_back(static_cast<rtr::NodeId>(std::stol(s)));
        }
      } else if (arg == "--schemes") {
        config.schemes = split_csv(next());
      } else if (arg == "--pairs") {
        config.pair_budget = std::stoll(next());
      } else if (arg == "--threads") {
        config.threads = std::stoi(next());
      } else if (arg == "--seed") {
        config.seed = std::stoull(next());
      } else if (arg == "--metric") {
        config.metric_mode = rtr::parse_metric_mode(next());
      } else if (arg == "--no-snapshot-phase") {
        config.snapshot_phase = false;
      } else if (arg == "--no-deltas") {
        config.hot_path_deltas = false;
      } else if (arg == "--no-net-serving") {
        config.net_serving = false;
      } else if (arg == "--check") {
        check_baseline = next();
        check_current = next();
      } else if (arg == "--check-growth") {
        check_growth = next();
      } else if (arg == "--audit") {
        audit_mode = true;
      } else if (arg == "--qps-tolerance") {
        gate.qps_drop_tolerance = std::stod(next());
      } else if (arg == "--delta-floor") {
        gate.delta_floor_pct = std::stod(next());
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return usage(argv[0]);
      }
    }

    if (!check_growth.empty()) {
      return run_growth_check(check_growth);
    }
    if (!check_baseline.empty()) {
      return run_check(check_baseline, check_current, gate);
    }

    for (const std::string& s : config.schemes) {
      if (!SchemeRegistry::global().contains(s)) {
        std::fprintf(stderr, "unknown scheme: %s\n", s.c_str());
        return 2;
      }
    }

    if (audit_mode) {
      set_default_apsp_threads(config.threads);
      return run_audit(config, rev, out_path);
    }

    // --threads (default: hardware concurrency) drives the QueryEngine
    // worker pool, the parallel-APSP delta, and -- via the process default
    // -- every all_pairs_shortest_paths call the sweep makes.  The resolved
    // value lands in the document's host block.
    set_default_apsp_threads(config.threads);

    const SuiteResult result = run_suite(config, &std::cerr);
    const std::string path =
        out_path.empty() ? default_output_name(rev) : out_path;
    write_text_file(path, suite_to_json(result, config, rev).dump());
    std::int64_t failures = 0;
    for (const auto& cell : result.cells) failures += cell.failures;
    std::printf("wrote %s (%zu cells, %zu hot-path deltas, %lld failed queries)\n",
                path.c_str(), result.cells.size(), result.deltas.size(),
                static_cast<long long>(failures));
    // The orchestrator itself gates on correctness: a failed roundtrip in any
    // cell is an error exit, so smoke jobs cannot silently pass on a broken
    // scheme.
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtr_bench: %s\n", e.what());
    return 1;
  }
}
