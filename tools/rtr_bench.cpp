// rtr_bench -- the unified benchmark orchestrator.
//
//   rtr_bench [--quick|--full] [--out FILE] [--rev REV]
//             [--families a,b,...] [--sizes 128,256,...]
//             [--schemes s1,s2,...] [--pairs N] [--threads N] [--seed S]
//             [--no-snapshot-phase] [--no-deltas]
//       Sweeps schemes x graph families x sizes, measures the construction /
//       batch-query / snapshot-load phases plus table and memory accounting,
//       re-measures the recorded hot-path before/after deltas, and writes a
//       schema-versioned BENCH_<rev>.json.
//
//   rtr_bench --check BASELINE CURRENT [--qps-tolerance 0.25]
//             [--delta-floor PCT]
//       The CI perf gate: exits non-zero when CURRENT regresses qps by more
//       than the tolerance on any baseline cell, increases any cell's avg
//       stretch, reports failed queries, or records a hot-path delta below
//       the floor.
//
//   rtr_bench --check-growth FILE
//       The nightly full-sweep gate: exits non-zero when a sqrt-n scheme's
//       bytes/node or build_ms grows faster across the document's sizes than
//       its O~(sqrt n) / O~(n sqrt n) budget allows (growth RATES, so no
//       committed full baseline is needed and hardware drops out).
//
// Families: random | grid | ring | scale-free | bidirected.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_harness/bench_harness.h"
#include "graph/apsp.h"
#include "net/scheme.h"

namespace {

using namespace rtr;
using namespace rtr::bench_harness;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick|--full] [--out FILE] [--rev REV]\n"
               "          [--families f1,f2] [--sizes n1,n2] [--schemes s1,s2]\n"
               "          [--pairs N] [--threads N (0 = hardware)] [--seed S]\n"
               "          [--no-snapshot-phase] [--no-deltas]\n"
               "       %s --check BASELINE CURRENT [--qps-tolerance T]\n"
               "          [--delta-floor PCT]\n"
               "       %s --check-growth FILE\n",
               argv0, argv0, argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Family family_by_name(const std::string& name) {
  for (const Family f : all_families()) {
    if (family_name(f) == name) return f;
  }
  // Accept the common aliases used in the ISSUE/README.
  if (name == "power-law" || name == "scale_free") return Family::kScaleFree;
  if (name == "ring+chords") return Family::kRing;
  throw std::invalid_argument("unknown family: " + name);
}

int run_growth_check(const std::string& path) {
  const auto doc = benchjson::Json::parse(read_text_file(path));
  const std::vector<std::string> violations = check_growth_budgets(doc);
  if (violations.empty()) {
    std::printf("growth gate OK: %zu cells in %s within the O~(sqrt n) budgets\n",
                cells_from_json(doc).size(), path.c_str());
    return 0;
  }
  std::fprintf(stderr, "growth gate FAILED (%zu violations):\n",
               violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}

int run_check(const std::string& baseline_path, const std::string& current_path,
              const GateOptions& options) {
  const auto baseline =
      benchjson::Json::parse(read_text_file(baseline_path));
  const auto current = benchjson::Json::parse(read_text_file(current_path));
  std::vector<std::string> notes;
  const std::vector<std::string> violations =
      compare_to_baseline(baseline, current, options, &notes);
  for (const std::string& n : notes) {
    std::fprintf(stderr, "note: %s\n", n.c_str());
  }
  if (violations.empty()) {
    std::printf("perf gate OK: %zu baseline cells checked against %s\n",
                cells_from_json(baseline).size(), current_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "perf gate FAILED (%zu violations):\n",
               violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    BenchConfig config = BenchConfig::quick();
    std::string out_path;
    std::string rev = "dev";
    std::string check_baseline, check_current, check_growth;
    GateOptions gate;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--quick") {
        config = BenchConfig::quick();
      } else if (arg == "--full") {
        config = BenchConfig::full();
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--rev") {
        rev = next();
      } else if (arg == "--families") {
        config.families.clear();
        for (const auto& f : split_csv(next())) {
          config.families.push_back(family_by_name(f));
        }
      } else if (arg == "--sizes") {
        config.sizes.clear();
        for (const auto& s : split_csv(next())) {
          config.sizes.push_back(static_cast<rtr::NodeId>(std::stol(s)));
        }
      } else if (arg == "--schemes") {
        config.schemes = split_csv(next());
      } else if (arg == "--pairs") {
        config.pair_budget = std::stoll(next());
      } else if (arg == "--threads") {
        config.threads = std::stoi(next());
      } else if (arg == "--seed") {
        config.seed = std::stoull(next());
      } else if (arg == "--no-snapshot-phase") {
        config.snapshot_phase = false;
      } else if (arg == "--no-deltas") {
        config.hot_path_deltas = false;
      } else if (arg == "--check") {
        check_baseline = next();
        check_current = next();
      } else if (arg == "--check-growth") {
        check_growth = next();
      } else if (arg == "--qps-tolerance") {
        gate.qps_drop_tolerance = std::stod(next());
      } else if (arg == "--delta-floor") {
        gate.delta_floor_pct = std::stod(next());
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return usage(argv[0]);
      }
    }

    if (!check_growth.empty()) {
      return run_growth_check(check_growth);
    }
    if (!check_baseline.empty()) {
      return run_check(check_baseline, check_current, gate);
    }

    for (const std::string& s : config.schemes) {
      if (!SchemeRegistry::global().contains(s)) {
        std::fprintf(stderr, "unknown scheme: %s\n", s.c_str());
        return 2;
      }
    }

    // --threads (default: hardware concurrency) drives the QueryEngine
    // worker pool, the parallel-APSP delta, and -- via the process default
    // -- every all_pairs_shortest_paths call the sweep makes.  The resolved
    // value lands in the document's host block.
    set_default_apsp_threads(config.threads);

    const SuiteResult result = run_suite(config, &std::cerr);
    const std::string path =
        out_path.empty() ? default_output_name(rev) : out_path;
    write_text_file(path, suite_to_json(result, config, rev).dump());
    std::int64_t failures = 0;
    for (const auto& cell : result.cells) failures += cell.failures;
    std::printf("wrote %s (%zu cells, %zu hot-path deltas, %lld failed queries)\n",
                path.c_str(), result.cells.size(), result.deltas.size(),
                static_cast<long long>(failures));
    // The orchestrator itself gates on correctness: a failed roundtrip in any
    // cell is an error exit, so smoke jobs cannot silently pass on a broken
    // scheme.
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtr_bench: %s\n", e.what());
    return 1;
  }
}
